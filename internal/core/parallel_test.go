package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/distill"
	"repro/internal/estimator"
	"repro/internal/testutil"
)

func TestParallelOptimizerFindsFasterModel(t *testing.T) {
	ds := testutil.TinyFace(141, 96, 48)
	teacher := testutil.TinyMultiDNN(142, ds)
	teach := testutil.PretrainTeachers(teacher, ds, 8, 0.004, 143)
	outs := distill.ComputeTeacherOutputs(teacher, ds.Train.X, 32)
	targets := map[int]float64{}
	for id, a := range teach {
		targets[id] = a - 0.12
	}
	accOpts := estimator.AccuracyOptions{
		FineTune: distill.Config{LR: 0.003, Epochs: 12, Batch: 16, EvalEvery: 2},
	}
	opt := core.NewParallelOptimizer(teacher, ds, targets, outs, ds.Train.X, accOpts,
		core.ParallelConfig{
			Config: core.Config{
				Rounds:  8,
				Seed:    7,
				Latency: estimator.LatencyOptions{Batch: 2, Warmup: 1, Runs: 3},
			},
			Workers: 2,
		})
	res := opt.Run()
	if res.Evaluated == 0 {
		t.Fatal("no candidates evaluated")
	}
	if res.Best == nil {
		t.Fatal("parallel search found no model meeting the targets")
	}
	if err := res.Best.Graph.Validate(); err != nil {
		t.Fatalf("best model invalid: %v", err)
	}
	if res.Best.FLOPs >= teacher.FLOPs() {
		t.Fatal("best model does not reduce FLOPs")
	}
	// Accuracy meets targets.
	for id, target := range targets {
		if res.Best.Accuracy[id] < target {
			t.Fatalf("task %d accuracy %.3f below target %.3f", id, res.Best.Accuracy[id], target)
		}
	}
	if err := teacher.Validate(); err != nil {
		t.Fatalf("parallel search corrupted the original: %v", err)
	}
}

func TestGraphToDOT(t *testing.T) {
	ds := testutil.TinyFace(151, 8, 4)
	g := testutil.TinyMultiDNN(152, ds)
	dot := g.ToDOT("tiny")
	for _, want := range []string{"digraph", "Input", "ConvBlock", "house", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// One edge per node (tree property): count "->" occurrences.
	if got := strings.Count(dot, "->"); got != g.NodeCount() {
		t.Fatalf("DOT has %d edges, want %d", got, g.NodeCount())
	}
}
