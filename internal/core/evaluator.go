package core

import (
	"sync"

	"repro/internal/data"
	"repro/internal/distill"
	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// EvalJob is one candidate fine-tune/measure job handed to a BatchEvaluator.
// The seed is a pure function of the search seed and the candidate's
// structural fingerprint (memoSeed), so any evaluator — an in-process slot
// or a remote worker — produces bit-identical results for the same job.
type EvalJob struct {
	// Cand is the candidate graph (mutated, untrained).
	Cand *graph.Graph
	// Profile is the candidate's capacity profile; evaluators recompute it
	// when zero (remote workers always do, after decoding the graph).
	Profile graph.CapacityProfile
	// Seed drives fine-tuning.
	Seed uint64
	// Warm shrinks the epoch budget (candidate inherited elite weights).
	Warm bool
}

// EvalOutcome is one job's result.
type EvalOutcome struct {
	// Met reports whether the candidate reached every task target.
	Met bool
	// Report is the fine-tuning report (nil when Err is set).
	Report *distill.Report
	// Trained is the fine-tuned graph. In-process evaluation trains the
	// job's graph in place; a remote worker returns a freshly decoded graph
	// carrying the trained weights. Only set when Met.
	Trained *graph.Graph
	// Err reports an evaluation that failed outright (transport errors in
	// a distributed search). The optimizer counts it, emits an eval-error
	// decision, and does not memoize the candidate, so a later duplicate
	// retries it.
	Err error
}

// BatchEvaluator evaluates a batch of candidates, returning outcomes in job
// order. The parallel optimizer calls it between its serial sample and
// merge phases; internal/search/coord provides the distributed
// implementation over HTTP workers.
type BatchEvaluator interface {
	EvaluateBatch(jobs []EvalJob) []EvalOutcome
}

// LocalEvaluator is the in-process BatchEvaluator: a pool of estimator
// slots over shared immutable inputs (dataset, teacher outputs). A
// goroutine owns a slot exclusively from acquire to release, so two
// in-flight evaluations can never share an estimator (FineTuneCandidate
// mutates its counters and embedded evaluator). The slot channel is owned
// by the evaluator, not the batch, so concurrent EvaluateBatch calls (the
// worker server handles HTTP requests independently) still respect the
// global slot bound.
type LocalEvaluator struct {
	slots chan *estimator.AccuracyEstimator
	n     int
}

// NewLocalEvaluator builds an evaluator with the given number of slots.
// Rule filtering is forced off in the slots: skip decisions belong to the
// optimizer's serial phase (or to the coordinator, in a distributed run).
func NewLocalEvaluator(ds *data.Dataset, targets map[int]float64, outs distill.TeacherOutputs,
	trainX *tensor.Tensor, accOpts estimator.AccuracyOptions, slots int) *LocalEvaluator {
	if slots <= 0 {
		slots = 1
	}
	accOpts.UseRuleFilter = false
	l := &LocalEvaluator{slots: make(chan *estimator.AccuracyEstimator, slots), n: slots}
	for i := 0; i < slots; i++ {
		l.slots <- estimator.NewAccuracyEstimator(ds, targets, outs, trainX, accOpts)
	}
	return l
}

// Slots returns the evaluator's concurrency bound.
func (l *LocalEvaluator) Slots() int { return l.n }

// EvaluateBatch implements BatchEvaluator. Kernel-level chunking is
// deterministic (see tensor.ParallelFor), so each outcome depends only on
// (candidate, seed), not on scheduling.
func (l *LocalEvaluator) EvaluateBatch(jobs []EvalJob) []EvalOutcome {
	outs := make([]EvalOutcome, len(jobs))
	var wg sync.WaitGroup
	for ji := range jobs {
		wg.Add(1)
		est := <-l.slots
		go func(ji int, est *estimator.AccuracyEstimator) {
			defer func() { l.slots <- est; wg.Done() }()
			j := jobs[ji]
			profile := j.Profile
			if profile.Total == 0 {
				j.Cand.RefreshCapacities()
				profile = j.Cand.Capacity()
			}
			out := est.FineTuneCandidate(j.Cand, profile, j.Seed, j.Warm)
			outs[ji] = EvalOutcome{Met: out.Met, Report: out.Report}
			if out.Met {
				outs[ji].Trained = j.Cand
			}
		}(ji, est)
	}
	wg.Wait()
	return outs
}
