package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/testutil"
)

func TestSaveLoadStateRoundTrip(t *testing.T) {
	ds := testutil.TinyFace(201, 16, 8)
	g1 := testutil.TinyMultiDNN(202, ds)
	g2 := testutil.TinyMultiDNN(203, ds)
	res := &core.Result{
		Elites: []*core.Elite{
			{Graph: g1, Latency: 5 * time.Millisecond, FLOPs: 1000,
				Accuracy: map[int]float64{0: 0.9, 1: 0.8}, FromElite: false,
				FineTuneTime: time.Second, Iteration: 3},
			{Graph: g2, Latency: 4 * time.Millisecond, FLOPs: 900,
				Accuracy: map[int]float64{0: 0.88, 1: 0.82}, FromElite: true,
				FineTuneTime: 2 * time.Second, Iteration: 7},
		},
	}
	dir := t.TempDir()
	if err := core.SaveState(dir, res, 9); err != nil {
		t.Fatal(err)
	}
	elites, iter, err := core.LoadState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 9 {
		t.Fatalf("iteration = %d, want 9", iter)
	}
	if len(elites) != 2 {
		t.Fatalf("elites = %d, want 2", len(elites))
	}
	e := elites[1]
	if e.Latency != 4*time.Millisecond || e.FLOPs != 900 || !e.FromElite || e.Iteration != 7 {
		t.Fatalf("elite meta lost: %+v", e)
	}
	if e.Accuracy[1] != 0.82 {
		t.Fatalf("accuracy lost: %v", e.Accuracy)
	}
	if err := e.Graph.Validate(); err != nil {
		t.Fatalf("restored graph invalid: %v", err)
	}
	// The restored graph must behave like the saved one.
	x := ds.Test.X
	a := g2.Forward(x.Clone(), false)
	b := e.Graph.Forward(x.Clone(), false)
	for id := range a {
		for i := range a[id].Data() {
			if a[id].Data()[i] != b[id].Data()[i] {
				t.Fatal("restored elite graph diverges")
			}
		}
	}
}

func TestLoadStateMissingDir(t *testing.T) {
	if _, _, err := core.LoadState(t.TempDir()); err == nil {
		t.Fatal("missing state accepted")
	}
}

// A resumed search must continue from the saved elites: with a zero-round
// warm start the best model is the best saved elite, and with extra rounds
// the search only improves on it.
func TestResumeSearchFromState(t *testing.T) {
	ds := testutil.TinyFace(211, 96, 48)
	teacher := testutil.TinyMultiDNN(212, ds)
	teach := testutil.PretrainTeachers(teacher, ds, 8, 0.004, 213)
	outs := computeOutputs(teacher, ds)
	targets := map[int]float64{}
	for id, a := range teach {
		targets[id] = a - 0.12
	}
	acc := newEstimator(ds, targets, outs)
	first := core.NewOptimizer(teacher, acc, core.Config{
		Rounds: 6, Seed: 5,
		Latency: estimator.LatencyOptions{Batch: 2, Warmup: 1, Runs: 3},
	}).Run()
	if first.Best == nil {
		t.Skip("first search found nothing at this scale; resume not exercisable")
	}
	dir := t.TempDir()
	if err := core.SaveState(dir, first, 6); err != nil {
		t.Fatal(err)
	}
	elites, iter, err := core.LoadState(dir)
	if err != nil {
		t.Fatal(err)
	}

	acc2 := newEstimator(ds, targets, outs)
	resumed := core.NewOptimizer(teacher, acc2, core.Config{
		Rounds: 4, Seed: 6,
		InitialElites: elites, StartIteration: iter,
		Latency: estimator.LatencyOptions{Batch: 2, Warmup: 1, Runs: 3},
	}).Run()
	if resumed.Best == nil {
		t.Fatal("resumed search lost the saved best")
	}
	if resumed.Best.FLOPs > first.Best.FLOPs && resumed.Best.Latency > first.Best.Latency*2 {
		t.Fatalf("resumed best much worse than saved best: %v vs %v",
			resumed.Best.Latency, first.Best.Latency)
	}
	// Iterations continue after the saved counter.
	for _, tr := range resumed.Traces {
		if tr.Iteration <= iter {
			t.Fatalf("resumed round numbered %d, want > %d", tr.Iteration, iter)
		}
	}
}
