package tensor

// Tunable kernel parameters. Every hot-path kernel that used to bake its
// tile constants into the source (gemmKC/gemmNC panels, the qgemmTileM
// activation tile, the attention bq/bk blocks) now accepts a parameter
// struct, so the autotuner (internal/tune) can search the space per layer
// shape and the plan compiler can stamp per-op winners. The zero value of
// each struct is invalid; use the Default* constructors, which reproduce
// the hand-picked constants the previous PRs shipped.

// Microkernel register-blocking shapes. MR is the number of destination
// rows held in accumulator registers across the k loop, NR the number of
// destination columns (NR lanes of 8 float32). The AVX2 path implements
// 4x16 (8 YMM accumulators, the general-purpose shape) and 8x8 (better for
// narrow outputs: classifier heads, small channel counts); the pure-Go
// fallback implements the same shapes over [8]float32 lanes.
const (
	Kernel4x16 = "4x16"
	Kernel8x8  = "8x8"
)

// GemmParams are the blocked-GEMM tile parameters: B is packed and consumed
// in KC x NC panels, and the inner microkernel is the MR x NR register
// block named by Kernel.
type GemmParams struct {
	// KC is the k-extent of a packed B panel (rows of B per panel).
	KC int
	// NC is the n-extent of a packed B panel (columns of B per panel).
	NC int
	// Kernel selects the microkernel register block: Kernel4x16 or
	// Kernel8x8.
	Kernel string
}

// DefaultGemmParams returns the shipped defaults: 256x256 panels (a full
// panel is 256 KiB, sized to stay L2-resident) with the 4x16 microkernel.
func DefaultGemmParams() GemmParams {
	return GemmParams{KC: 256, NC: 256, Kernel: Kernel4x16}
}

// norm clamps the parameters to a usable configuration, mapping unknown or
// zero fields onto the defaults. mr/nr are the resolved register block.
func (g GemmParams) norm() (kc, nc, mr, nr int) {
	kc, nc = g.KC, g.NC
	if kc <= 0 {
		kc = 256
	}
	if nc <= 0 {
		nc = 256
	}
	switch g.Kernel {
	case Kernel8x8:
		mr, nr = 8, 8
	default:
		mr, nr = 4, 16
	}
	if nc < nr {
		nc = nr
	}
	return kc, nc, mr, nr
}

// String renders the parameters for kernel reports.
func (g GemmParams) String() string {
	kc, nc, mr, nr := g.norm()
	return "kc=" + itoa(kc) + " nc=" + itoa(nc) + " kern=" + itoa(mr) + "x" + itoa(nr)
}

// QGemmParams are the int8 SWAR GEMM parameters.
type QGemmParams struct {
	// TileM is the activation-row tile: one pass over a weight group's
	// packed stream is shared by this many rows. Must be in [1, QGemmMaxTileM].
	TileM int
}

// QGemmMaxTileM bounds the activation tile (the kernel's on-stack lane
// accumulator array is sized for it).
const QGemmMaxTileM = 32

// DefaultQGemmParams returns the shipped default (tile of 8 rows).
func DefaultQGemmParams() QGemmParams { return QGemmParams{TileM: 8} }

func (q QGemmParams) norm() int {
	t := q.TileM
	if t <= 0 {
		t = 8
	}
	if t > QGemmMaxTileM {
		t = QGemmMaxTileM
	}
	return t
}

// String renders the parameters for kernel reports.
func (q QGemmParams) String() string { return "tile_m=" + itoa(q.norm()) }

// AttnParams are the flash-attention tile sizes: BQ query rows stream over
// BK-wide key blocks (tensor.FlashAttendHead's bq/bk arguments).
type AttnParams struct {
	BQ, BK int
}

// DefaultAttnParams returns the shipped defaults (32 query rows x 64 keys).
func DefaultAttnParams() AttnParams { return AttnParams{BQ: 32, BK: 64} }

// Norm clamps the tiles to the sequence length, mapping zero fields onto
// the defaults.
func (a AttnParams) Norm(t int) (bq, bk int) {
	bq, bk = a.BQ, a.BK
	if bq <= 0 {
		bq = 32
	}
	if bk <= 0 {
		bk = 64
	}
	if bq > t {
		bq = t
	}
	if bk > t {
		bk = t
	}
	return bq, bk
}

// String renders the parameters for kernel reports.
func (a AttnParams) String() string { return "bq=" + itoa(a.BQ) + " bk=" + itoa(a.BK) }

// itoa is a minimal positive-int formatter, avoiding a strconv import in
// this hot-path package for the report strings alone.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
