//go:build amd64 && !gmorph_novec

#include "textflag.h"

// AVX2+FMA microkernels. Layout contract (shared with microgo.go): bp is a
// packed strip of k rows x NR contiguous floats; a rows are lda floats
// apart; c rows are ldc floats apart. Every kernel loads the destination
// tile into YMM accumulators, runs the k loop in strictly ascending p
// order (so accumulation order per element matches the pure-Go strip
// kernel's panel ordering and stays deterministic across worker counts),
// and stores the tile back once.

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func avx2Gemm4x16(k int, a *float32, lda int, bp *float32, c *float32, ldc int)
//
// C[4][16] += A[4][k] @ BP. Eight YMM accumulators (two 8-lane halves per
// row), k unrolled by two: per pair, four row broadcasts feed eight FMAs
// against the two B halves.
TEXT ·avx2Gemm4x16(SB), NOSPLIT, $0-48
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), AX
	MOVQ lda+16(FP), R8
	MOVQ bp+24(FP), BX
	MOVQ c+32(FP), DI
	MOVQ ldc+40(FP), R9
	SHLQ $2, R8                 // strides in bytes
	SHLQ $2, R9

	// A row pointers.
	MOVQ AX, R10
	LEAQ (AX)(R8*1), R11
	LEAQ (AX)(R8*2), R12
	LEAQ (R11)(R8*2), R13

	// Load the C tile.
	MOVQ    DI, DX
	VMOVUPS (DX), Y0
	VMOVUPS 32(DX), Y1
	ADDQ    R9, DX
	VMOVUPS (DX), Y2
	VMOVUPS 32(DX), Y3
	ADDQ    R9, DX
	VMOVUPS (DX), Y4
	VMOVUPS 32(DX), Y5
	ADDQ    R9, DX
	VMOVUPS (DX), Y6
	VMOVUPS 32(DX), Y7

	MOVQ CX, SI
	ANDQ $-2, SI                // SI = number of paired k steps * 1
	JZ   tail

pair:
	VMOVUPS      (BX), Y8
	VMOVUPS      32(BX), Y9
	VBROADCASTSS (R10), Y10
	VBROADCASTSS (R11), Y11
	VBROADCASTSS (R12), Y14
	VBROADCASTSS (R13), Y15
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VFMADD231PS  Y8, Y14, Y4
	VFMADD231PS  Y9, Y14, Y5
	VFMADD231PS  Y8, Y15, Y6
	VFMADD231PS  Y9, Y15, Y7

	VMOVUPS      64(BX), Y12
	VMOVUPS      96(BX), Y13
	VBROADCASTSS 4(R10), Y10
	VBROADCASTSS 4(R11), Y11
	VBROADCASTSS 4(R12), Y14
	VBROADCASTSS 4(R13), Y15
	VFMADD231PS  Y12, Y10, Y0
	VFMADD231PS  Y13, Y10, Y1
	VFMADD231PS  Y12, Y11, Y2
	VFMADD231PS  Y13, Y11, Y3
	VFMADD231PS  Y12, Y14, Y4
	VFMADD231PS  Y13, Y14, Y5
	VFMADD231PS  Y12, Y15, Y6
	VFMADD231PS  Y13, Y15, Y7

	ADDQ $128, BX
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, R12
	ADDQ $8, R13
	SUBQ $2, SI
	JNZ  pair

tail:
	TESTQ $1, CX
	JZ    store
	VMOVUPS      (BX), Y8
	VMOVUPS      32(BX), Y9
	VBROADCASTSS (R10), Y10
	VBROADCASTSS (R11), Y11
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS (R12), Y10
	VBROADCASTSS (R13), Y11
	VFMADD231PS  Y8, Y10, Y4
	VFMADD231PS  Y9, Y10, Y5
	VFMADD231PS  Y8, Y11, Y6
	VFMADD231PS  Y9, Y11, Y7

store:
	MOVQ    DI, DX
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	ADDQ    R9, DX
	VMOVUPS Y2, (DX)
	VMOVUPS Y3, 32(DX)
	ADDQ    R9, DX
	VMOVUPS Y4, (DX)
	VMOVUPS Y5, 32(DX)
	ADDQ    R9, DX
	VMOVUPS Y6, (DX)
	VMOVUPS Y7, 32(DX)
	VZEROUPPER
	RET

// func avx2Gemm8x8(k int, a *float32, lda int, bp *float32, c *float32, ldc int)
//
// C[8][8] += A[8][k] @ BP. One YMM accumulator per row; rows addressed
// through two bases (rows 0-3 off AX, rows 4-7 off SI) with 1x/2x/3x lda
// index forms.
TEXT ·avx2Gemm8x8(SB), NOSPLIT, $0-48
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), AX
	MOVQ lda+16(FP), R8
	MOVQ bp+24(FP), BX
	MOVQ c+32(FP), DI
	MOVQ ldc+40(FP), R9
	SHLQ $2, R8
	SHLQ $2, R9
	LEAQ (R8)(R8*2), R10        // 3*lda bytes
	LEAQ (AX)(R8*4), SI         // rows 4-7 base

	// Load the C tile.
	MOVQ    DI, DX
	VMOVUPS (DX), Y0
	ADDQ    R9, DX
	VMOVUPS (DX), Y1
	ADDQ    R9, DX
	VMOVUPS (DX), Y2
	ADDQ    R9, DX
	VMOVUPS (DX), Y3
	ADDQ    R9, DX
	VMOVUPS (DX), Y4
	ADDQ    R9, DX
	VMOVUPS (DX), Y5
	ADDQ    R9, DX
	VMOVUPS (DX), Y6
	ADDQ    R9, DX
	VMOVUPS (DX), Y7

	TESTQ CX, CX
	JZ    store

kloop:
	VMOVUPS      (BX), Y8
	VBROADCASTSS (AX), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS (AX)(R8*1), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS (AX)(R8*2), Y11
	VFMADD231PS  Y8, Y11, Y2
	VBROADCASTSS (AX)(R10*1), Y12
	VFMADD231PS  Y8, Y12, Y3
	VBROADCASTSS (SI), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS (SI)(R8*1), Y10
	VFMADD231PS  Y8, Y10, Y5
	VBROADCASTSS (SI)(R8*2), Y11
	VFMADD231PS  Y8, Y11, Y6
	VBROADCASTSS (SI)(R10*1), Y12
	VFMADD231PS  Y8, Y12, Y7
	ADDQ         $32, BX
	ADDQ         $4, AX
	ADDQ         $4, SI
	DECQ         CX
	JNZ          kloop

store:
	MOVQ    DI, DX
	VMOVUPS Y0, (DX)
	ADDQ    R9, DX
	VMOVUPS Y1, (DX)
	ADDQ    R9, DX
	VMOVUPS Y2, (DX)
	ADDQ    R9, DX
	VMOVUPS Y3, (DX)
	ADDQ    R9, DX
	VMOVUPS Y4, (DX)
	ADDQ    R9, DX
	VMOVUPS Y5, (DX)
	ADDQ    R9, DX
	VMOVUPS Y6, (DX)
	ADDQ    R9, DX
	VMOVUPS Y7, (DX)
	VZEROUPPER
	RET

// func avx2Gemm1x16(k int, a *float32, bp *float32, c *float32)
//
// C[0:16] += A[0:k] @ BP: the M-tail kernel for 16-wide strips.
TEXT ·avx2Gemm1x16(SB), NOSPLIT, $0-32
	MOVQ    k+0(FP), CX
	MOVQ    a+8(FP), AX
	MOVQ    bp+16(FP), BX
	MOVQ    c+24(FP), DI
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	TESTQ   CX, CX
	JZ      store

kloop:
	VBROADCASTSS (AX), Y2
	VFMADD231PS  (BX), Y2, Y0
	VFMADD231PS  32(BX), Y2, Y1
	ADDQ         $64, BX
	ADDQ         $4, AX
	DECQ         CX
	JNZ          kloop

store:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VZEROUPPER
	RET

// func avx2Gemm1x8(k int, a *float32, bp *float32, c *float32)
//
// C[0:8] += A[0:k] @ BP: the M-tail kernel for 8-wide strips.
TEXT ·avx2Gemm1x8(SB), NOSPLIT, $0-32
	MOVQ    k+0(FP), CX
	MOVQ    a+8(FP), AX
	MOVQ    bp+16(FP), BX
	MOVQ    c+24(FP), DI
	VMOVUPS (DI), Y0
	TESTQ   CX, CX
	JZ      store

kloop:
	VBROADCASTSS (AX), Y2
	VFMADD231PS  (BX), Y2, Y0
	ADDQ         $32, BX
	ADDQ         $4, AX
	DECQ         CX
	JNZ          kloop

store:
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET

// func avx2Dot(a, b *float32, n int) float32
//
// Dot product over n floats, n a positive multiple of 8 (the Go wrapper
// owns the scalar tail). Two accumulators, 16 floats per main step.
TEXT ·avx2Dot(SB), NOSPLIT, $0-28
	MOVQ   a+0(FP), AX
	MOVQ   b+8(FP), BX
	MOVQ   n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	CMPQ   CX, $16
	JL     tail8

loop16:
	VMOVUPS     (AX), Y2
	VMOVUPS     32(AX), Y3
	VFMADD231PS (BX), Y2, Y0
	VFMADD231PS 32(BX), Y3, Y1
	ADDQ        $64, AX
	ADDQ        $64, BX
	SUBQ        $16, CX
	CMPQ        CX, $16
	JGE         loop16

tail8:
	CMPQ        CX, $8
	JL          reduce
	VMOVUPS     (AX), Y2
	VFMADD231PS (BX), Y2, Y0
	ADDQ        $32, AX
	ADDQ        $32, BX
	SUBQ        $8, CX
	JMP         tail8

reduce:
	VADDPS       Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS       X1, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VZEROUPPER
	MOVSS        X0, ret+24(FP)
	RET

// func avx2Axpy(y, x *float32, a float32, n int)
//
// y += a * x over n floats, n a positive multiple of 8.
TEXT ·avx2Axpy(SB), NOSPLIT, $0-32
	MOVQ         y+0(FP), AX
	MOVQ         x+8(FP), BX
	VBROADCASTSS a+16(FP), Y2
	MOVQ         n+24(FP), CX

loop8:
	VMOVUPS     (AX), Y0
	VFMADD231PS (BX), Y2, Y0
	VMOVUPS     Y0, (AX)
	ADDQ        $32, AX
	ADDQ        $32, BX
	SUBQ        $8, CX
	JG          loop8
	VZEROUPPER
	RET

// func avx2Scale(y *float32, a float32, n int)
//
// y *= a over n floats, n a positive multiple of 8.
TEXT ·avx2Scale(SB), NOSPLIT, $0-24
	MOVQ         y+0(FP), AX
	VBROADCASTSS a+8(FP), Y1
	MOVQ         n+16(FP), CX

loop8:
	VMULPS  (AX), Y1, Y0
	VMOVUPS Y0, (AX)
	ADDQ    $32, AX
	SUBQ    $8, CX
	JG      loop8
	VZEROUPPER
	RET
