package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (xorshift64*) used
// for weight initialization and synthetic data. It is deliberately
// self-contained so experiments are reproducible across Go versions.
type RNG struct {
	state uint64
	// spare holds a cached second normal variate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// nonzero constant since xorshift requires nonzero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.hasSpare = true
		return u * m
	}
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from r, so that sub-tasks can get
// reproducible but decorrelated streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// FillUniform fills t with uniform values in [lo, hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float32) {
	d := t.Data()
	span := hi - lo
	for i := range d {
		d[i] = lo + span*r.Float32()
	}
}

// FillNormal fills t with normal values of the given mean and stddev.
func (r *RNG) FillNormal(t *Tensor, mean, std float32) {
	d := t.Data()
	for i := range d {
		d[i] = mean + std*float32(r.NormFloat64())
	}
}
