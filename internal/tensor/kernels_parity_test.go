package tensor

import (
	"fmt"
	"math"
	"testing"
)

// Parity suite: every optimized kernel must agree with its naive reference
// (naive.go) to within parityTol across shapes chosen to hit all blocking
// edge cases — dimensions below, at, and straddling the 4-wide unroll and
// the gemmKC/gemmNC panel boundaries.

const parityTol = 1e-4

// parityDims exercises the microkernel tails: below one vector lane (1,
// 3, 5), one short of a lane (7), one short of the 16-wide strip (15), an
// exact tile multiple (64), and odd sizes past tile boundaries (17, 33,
// 129) — so M tails (rows % MR), N tails (cols % NR), and K oddness all
// run under both kernel tiers.
var parityDims = []int{1, 3, 5, 7, 15, 17, 33, 64, 129}

// panelDims adds sizes that straddle the default KC/NC panel boundaries
// (256) so strip packing of partial panels and multi-panel accumulation
// both run.
var panelDims = []int{255, 256, 263, 517}

func maxAbsDiff(a, b *Tensor) float64 {
	var m float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		d := math.Abs(float64(ad[i]) - float64(bd[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func fillRandom(rng *RNG, ts ...*Tensor) {
	for _, t := range ts {
		rng.FillNormal(t, 0, 1)
	}
}

func TestMatMulParity(t *testing.T) {
	rng := NewRNG(11)
	for _, m := range parityDims {
		for _, k := range parityDims {
			for _, n := range parityDims {
				a, b := New(m, k), New(k, n)
				fillRandom(rng, a, b)
				got, want := New(m, n), New(m, n)
				MatMulInto(got, a, b)
				NaiveMatMulInto(want, a, b)
				if d := maxAbsDiff(got, want); d > parityTol {
					t.Errorf("MatMul [%d,%d]@[%d,%d]: max diff %g", m, k, k, n, d)
				}
			}
		}
	}
}

func TestMatMulParityPanelBoundaries(t *testing.T) {
	rng := NewRNG(12)
	for _, k := range panelDims {
		for _, n := range panelDims {
			m := 33
			a, b := New(m, k), New(k, n)
			fillRandom(rng, a, b)
			got, want := New(m, n), New(m, n)
			MatMulInto(got, a, b)
			NaiveMatMulInto(want, a, b)
			// Accumulating ~500 terms loosens attainable agreement a bit;
			// scale tolerance with sqrt(k).
			tol := parityTol * math.Sqrt(float64(k))
			if d := maxAbsDiff(got, want); d > tol {
				t.Errorf("MatMul [%d,%d]@[%d,%d]: max diff %g > %g", m, k, k, n, d, tol)
			}
		}
	}
}

func TestMatMulTransAParity(t *testing.T) {
	rng := NewRNG(13)
	for _, m := range parityDims {
		for _, k := range parityDims {
			for _, n := range parityDims {
				a, b := New(k, m), New(k, n)
				fillRandom(rng, a, b)
				got, want := New(m, n), New(m, n)
				MatMulTransAInto(got, a, b)
				NaiveMatMulTransAInto(want, a, b)
				if d := maxAbsDiff(got, want); d > parityTol {
					t.Errorf("MatMulTransA [%d,%d]ᵀ@[%d,%d]: max diff %g", k, m, k, n, d)
				}
			}
		}
	}
}

func TestMatMulTransBParity(t *testing.T) {
	rng := NewRNG(14)
	for _, m := range parityDims {
		for _, k := range parityDims {
			for _, n := range parityDims {
				a, b := New(m, k), New(n, k)
				fillRandom(rng, a, b)
				got, want := New(m, n), New(m, n)
				MatMulTransBInto(got, a, b)
				NaiveMatMulTransBInto(want, a, b)
				if d := maxAbsDiff(got, want); d > parityTol {
					t.Errorf("MatMulTransB [%d,%d]@[%d,%d]ᵀ: max diff %g", m, k, n, k, d)
				}
			}
		}
	}
}

// im2colConv runs a convolution the way the nn and engine hot paths do:
// im2col unfold, blocked GEMM against the transposed weight, NHWC→NCHW
// rearrange. It is the optimized pipeline the parity test pits against
// NaiveConv2d.
func im2colConv(x, weight *Tensor, bias []float32, kh, kw, stride, pad int) *Tensor {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outC := weight.Dim(0)
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	cols := Im2Col(x, kh, kw, stride, pad)
	flat := New(n*oh*ow, outC)
	MatMulTransBInto(flat, cols, weight)
	out := New(n, outC, oh, ow)
	fd, od := flat.Data(), out.Data()
	for ni := 0; ni < n; ni++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := fd[((ni*oh+oy)*ow+ox)*outC:]
				for oc := 0; oc < outC; oc++ {
					v := src[oc]
					if bias != nil {
						v += bias[oc]
					}
					od[((ni*outC+oc)*oh+oy)*ow+ox] = v
				}
			}
		}
	}
	return out
}

func TestConv2dParity(t *testing.T) {
	rng := NewRNG(15)
	type cfg struct {
		n, c, h, w, outC, k, stride, pad int
	}
	var cases []cfg
	for _, k := range []int{1, 3, 5} {
		for _, stride := range []int{1, 2} {
			for _, pad := range []int{0, 1, 2} {
				for _, hw := range []int{7, 12} {
					if hw+2*pad < k {
						continue
					}
					cases = append(cases, cfg{n: 2, c: 3, h: hw, w: hw, outC: 4, k: k, stride: stride, pad: pad})
				}
			}
		}
	}
	// Odd channel/batch combos and a rectangular input.
	cases = append(cases,
		cfg{n: 1, c: 1, h: 5, w: 9, outC: 1, k: 3, stride: 1, pad: 1},
		cfg{n: 3, c: 5, h: 8, w: 6, outC: 7, k: 3, stride: 2, pad: 1},
	)
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("n%dc%d_%dx%d_o%dk%ds%dp%d", tc.n, tc.c, tc.h, tc.w, tc.outC, tc.k, tc.stride, tc.pad)
		t.Run(name, func(t *testing.T) {
			x := New(tc.n, tc.c, tc.h, tc.w)
			weight := New(tc.outC, tc.c*tc.k*tc.k)
			fillRandom(rng, x, weight)
			bias := make([]float32, tc.outC)
			for i := range bias {
				bias[i] = rng.Float32() - 0.5
			}
			got := im2colConv(x, weight, bias, tc.k, tc.k, tc.stride, tc.pad)
			want := NaiveConv2d(x, weight, bias, tc.k, tc.k, tc.stride, tc.pad)
			if !SameShape(got, want) {
				t.Fatalf("shape mismatch: %v vs %v", got.Shape(), want.Shape())
			}
			if d := maxAbsDiff(got, want); d > parityTol {
				t.Errorf("max diff %g", d)
			}
		})
	}
}

// TestMatMulIntoOverwritesDst guards the accumulate-style blocked kernel
// against leaking prior dst contents.
func TestMatMulIntoOverwritesDst(t *testing.T) {
	rng := NewRNG(16)
	a, b := New(17, 9), New(9, 13)
	fillRandom(rng, a, b)
	got := Full(123, 17, 13)
	want := New(17, 13)
	MatMulInto(got, a, b)
	NaiveMatMulInto(want, a, b)
	if d := maxAbsDiff(got, want); d > parityTol {
		t.Errorf("dst not overwritten: max diff %g", d)
	}
}
