//go:build amd64 && !gmorph_novec

package tensor

import "os"

// AVX2+FMA tier: CPUID feature detection and the Go-side bindings for the
// assembly microkernels in vec_amd64.s. When the CPU qualifies (AVX2, FMA,
// and OS-enabled YMM state) the init below rebinds the dispatch variables
// in vec.go; otherwise the pure-Go lane tier stays in place. Set
// GMORPH_NOVEC=1 to keep the pure-Go tier on a qualifying CPU without
// rebuilding (CI uses the gmorph_novec build tag for the same purpose,
// which drops this file entirely).

func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbvAsm() (eax, edx uint32)

//go:noescape
func avx2Gemm4x16(k int, a *float32, lda int, bp *float32, c *float32, ldc int)

//go:noescape
func avx2Gemm8x8(k int, a *float32, lda int, bp *float32, c *float32, ldc int)

//go:noescape
func avx2Gemm1x16(k int, a *float32, bp *float32, c *float32)

//go:noescape
func avx2Gemm1x8(k int, a *float32, bp *float32, c *float32)

//go:noescape
func avx2Dot(a, b *float32, n int) float32

//go:noescape
func avx2Axpy(y, x *float32, a float32, n int)

//go:noescape
func avx2Scale(y *float32, a float32, n int)

// cpuHasAVX2FMA reports whether the CPU and OS support the assembly tier:
// AVX2 and FMA instruction sets, plus XMM/YMM state enabled in XCR0 (the
// OSXSAVE check guards the XGETBV read).
func cpuHasAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	if xcr0&0x6 != 0x6 { // XMM and YMM state both OS-managed
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

func init() {
	if os.Getenv("GMORPH_NOVEC") != "" || !cpuHasAVX2FMA() {
		return
	}
	vecActive = true
	vecKind = "avx2"
	microGemm4x16 = avx2Gemm4x16
	microGemm8x8 = avx2Gemm8x8
	microGemm1x16 = avx2Gemm1x16
	microGemm1x8 = avx2Gemm1x8
	vdot = dotAVX2
	vaxpy = axpyAVX2
	vscale = scaleAVX2
}

// dotAVX2 is the slice-level dot product: the assembly runs the 8-aligned
// prefix, Go finishes the tail. len(b) must be >= len(a).
func dotAVX2(a, b []float32) float32 {
	n := len(a) &^ 7
	var s float32
	if n > 0 {
		s = avx2Dot(&a[0], &b[0], n)
	}
	for p := n; p < len(a); p++ {
		s += a[p] * b[p]
	}
	return s
}

// axpyAVX2 computes y += a * x. len(x) must be >= len(y).
func axpyAVX2(y []float32, a float32, x []float32) {
	n := len(y) &^ 7
	if n > 0 {
		avx2Axpy(&y[0], &x[0], a, n)
	}
	for p := n; p < len(y); p++ {
		y[p] += a * x[p]
	}
}

// scaleAVX2 computes y *= a in place.
func scaleAVX2(y []float32, a float32) {
	n := len(y) &^ 7
	if n > 0 {
		avx2Scale(&y[0], a, n)
	}
	for p := n; p < len(y); p++ {
		y[p] *= a
	}
}
