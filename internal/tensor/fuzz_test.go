package tensor

import (
	"math"
	"testing"
)

// Fuzz targets for blocked-vs-naive kernel parity. The corpus is seeded
// with the shapes the internal/models zoo actually produces (3x3 stride-1
// pad-1 convolutions lowered to [N*OH*OW, C*9] x [outC, C*9]ᵀ GEMMs, plus
// classifier-head matmuls), and the fuzzer then explores arbitrary small
// shapes and value patterns.

// FuzzMatMulParity checks MatMulInto (blocked, packed, unrolled) against
// NaiveMatMulInto on random shapes and values, including the sparse inputs
// that trigger the kernel's zero-skip path.
func FuzzMatMulParity(f *testing.F) {
	// Model-zoo GEMM shapes (modulo the %64+1 clamp below): a 3->16 stem
	// conv over 8x8 (m=64,k=27,n=16), a 16->32 conv (k=144), and the
	// classifier head (k=128,n=10).
	f.Add(uint8(63), uint8(26), uint8(15), uint64(1), false)
	f.Add(uint8(48), uint8(143%64), uint8(31), uint64(2), false)
	f.Add(uint8(3), uint8(127%64), uint8(9), uint64(3), false)
	// Unroll remainders and degenerate dims.
	f.Add(uint8(0), uint8(0), uint8(0), uint64(4), false)
	f.Add(uint8(2), uint8(4), uint8(2), uint64(5), true)
	f.Add(uint8(16), uint8(3), uint8(16), uint64(6), true)
	f.Fuzz(func(t *testing.T, mRaw, kRaw, nRaw uint8, seed uint64, sparse bool) {
		m := int(mRaw)%64 + 1
		k := int(kRaw)%64 + 1
		n := int(nRaw)%64 + 1
		rng := NewRNG(seed)
		a, b := New(m, k), New(k, n)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		if sparse {
			// ReLU-like sparsity exercises the all-zero group skip.
			ad := a.Data()
			for i := range ad {
				if ad[i] < 0 {
					ad[i] = 0
				}
			}
		}
		got, want := New(m, n), New(m, n)
		MatMulInto(got, a, b)
		NaiveMatMulInto(want, a, b)
		if d := maxAbsDiff(got, want); d > parityTol*math.Sqrt(float64(k)) {
			t.Fatalf("MatMul [%d,%d]@[%d,%d] (sparse=%v): max diff %g", m, k, k, n, sparse, d)
		}
	})
}

// FuzzGemmParamsParity checks the parameterised blocked GEMM — both the
// plain and the transposed-B entry points — against the naive reference
// under fuzzed tile parameters. Dimensions reach past the packed-panel
// extents the fuzzed KC/NC select, so panel seams, ragged tail tiles, and
// both microkernel register blocks are all crossed. Any parameter choice
// must agree with the naive reference AND with the default parameters to
// the parity tolerance (panel seams regroup the k sum, so agreement is
// within rounding, not bit-exact).
func FuzzGemmParamsParity(f *testing.F) {
	// Panel-crossing seeds: k and n past one KC/NC panel, ragged remainders
	// against both register blocks, and degenerate single-element shapes.
	f.Add(uint16(65), uint16(129), uint16(37), uint8(0), uint8(1), true, uint64(1), false)
	f.Add(uint16(17), uint16(150), uint16(140), uint8(1), uint8(0), false, uint64(2), true)
	f.Add(uint16(4), uint16(96), uint16(8), uint8(3), uint8(2), true, uint64(3), false)
	f.Add(uint16(1), uint16(1), uint16(1), uint8(0), uint8(0), false, uint64(4), false)
	f.Fuzz(func(t *testing.T, mRaw, kRaw, nRaw uint16, kcRaw, ncRaw uint8, transB bool, seed uint64, eightWide bool) {
		m := int(mRaw)%80 + 1
		k := int(kRaw)%160 + 1
		n := int(nRaw)%160 + 1
		// Small panels force seam crossings inside fuzz-sized problems; zero
		// fields exercise the norm()-to-default path.
		gp := GemmParams{KC: int(kcRaw) % 4 * 32, NC: int(ncRaw) % 4 * 32}
		if eightWide {
			gp.Kernel = Kernel8x8
		}
		rng := NewRNG(seed)
		want := New(m, n)
		got, gotDefault := New(m, n), New(m, n)
		if transB {
			a, b := New(m, k), New(n, k)
			rng.FillNormal(a, 0, 1)
			rng.FillNormal(b, 0, 1)
			MatMulTransBIntoP(got, a, b, gp)
			MatMulTransBIntoP(gotDefault, a, b, DefaultGemmParams())
			NaiveMatMulTransBInto(want, a, b)
		} else {
			a, b := New(m, k), New(k, n)
			rng.FillNormal(a, 0, 1)
			rng.FillNormal(b, 0, 1)
			MatMulIntoP(got, a, b, gp)
			MatMulIntoP(gotDefault, a, b, DefaultGemmParams())
			NaiveMatMulInto(want, a, b)
		}
		if d := maxAbsDiff(got, want); d > parityTol*math.Sqrt(float64(k)) {
			t.Fatalf("GEMM m%d k%d n%d transB=%v %s: max diff vs naive %g", m, k, n, transB, gp.String(), d)
		}
		if d := maxAbsDiff(got, gotDefault); d > parityTol*math.Sqrt(float64(k)) {
			t.Fatalf("GEMM m%d k%d n%d transB=%v %s: max diff vs default params %g", m, k, n, transB, gp.String(), d)
		}
	})
}

// FuzzConv2dParity checks the im2col+GEMM convolution pipeline against the
// direct seven-loop NaiveConv2d over random geometries, strides, and pads.
func FuzzConv2dParity(f *testing.F) {
	// Model-zoo geometry: 3x3 stride-1 pad-1 over small feature maps, the
	// 1x1 projection used by residual downsampling, and a strided conv.
	f.Add(uint8(2), uint8(3), uint8(8), uint8(8), uint8(4), uint8(3), uint8(1), uint8(1), uint64(1))
	f.Add(uint8(1), uint8(4), uint8(6), uint8(6), uint8(2), uint8(1), uint8(1), uint8(0), uint64(2))
	f.Add(uint8(2), uint8(2), uint8(9), uint8(7), uint8(3), uint8(3), uint8(2), uint8(1), uint64(3))
	f.Add(uint8(1), uint8(1), uint8(5), uint8(5), uint8(1), uint8(5), uint8(1), uint8(2), uint64(4))
	f.Fuzz(func(t *testing.T, nRaw, cRaw, hRaw, wRaw, outCRaw, kRaw, strideRaw, padRaw uint8, seed uint64) {
		n := int(nRaw)%3 + 1
		c := int(cRaw)%4 + 1
		k := int(kRaw)%5 + 1
		stride := int(strideRaw)%3 + 1
		pad := int(padRaw) % 3
		h := int(hRaw)%10 + k // ensure at least one output position
		w := int(wRaw)%10 + k
		outC := int(outCRaw)%4 + 1
		rng := NewRNG(seed)
		x := New(n, c, h, w)
		weight := New(outC, c*k*k)
		rng.FillNormal(x, 0, 1)
		rng.FillNormal(weight, 0, 1)
		bias := make([]float32, outC)
		for i := range bias {
			bias[i] = rng.Float32() - 0.5
		}
		got := im2colConv(x, weight, bias, k, k, stride, pad)
		want := NaiveConv2d(x, weight, bias, k, k, stride, pad)
		if !SameShape(got, want) {
			t.Fatalf("shape mismatch: %v vs %v", got.Shape(), want.Shape())
		}
		if d := maxAbsDiff(got, want); d > parityTol*math.Sqrt(float64(c*k*k)) {
			t.Fatalf("conv n%d c%d %dx%d outC%d k%d s%d p%d: max diff %g", n, c, h, w, outC, k, stride, pad, d)
		}
	})
}
