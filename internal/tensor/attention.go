package tensor

import (
	"fmt"
	"math"
)

// Attention kernels. FlashAttendHead is the flash-style tiled
// softmax(Q·Kᵀ)·V for one attention head: it streams over key/value tiles
// with a running row maximum and running normalizer, rescaling the output
// accumulator online, so the full TxT score matrix is never materialized —
// the working set is one Bq x Bk score tile plus two Bq-float vectors,
// supplied by the caller. NaiveAttendHead is its reference twin (full score
// matrix, textbook two-pass softmax); attention_test.go and
// FuzzTiledSoftmaxParity hold the two within 1e-4 across arbitrary sequence
// lengths, head dims, and tile sizes.
//
// Both kernels read Q, K, V rows through a common row stride, so a head can
// address its hd-wide column band inside a packed [T, 3*D] QKV projection
// (stride 3*D) or a plain [T, D] tensor (stride D) without any copying.

// AttendWorkspace returns the float32 workspace length FlashAttendHead
// needs for query tile bq and key tile bk: the score tile plus the running
// max and running sum vectors.
func AttendWorkspace(bq, bk int) int { return bq*bk + 2*bq }

// FlashAttendHead computes out = softmax(scale * Q Kᵀ) V for one head over
// t tokens with head dimension hd. Row i of Q is q[i*stride : i*stride+hd]
// (likewise k, v), and row i of the output is out[i*outStride :
// i*outStride+hd]; out rows are overwritten. ws must have at least
// AttendWorkspace(bq, bk) elements and is clobbered. The kernel is
// single-threaded by design: callers parallelize over (batch, head) units,
// each owning disjoint output columns and its own workspace.
func FlashAttendHead(out []float32, outStride int, q, k, v []float32, stride, t, hd int, scale float32, bq, bk int, ws []float32) {
	if bq <= 0 || bk <= 0 {
		panic(fmt.Sprintf("tensor: FlashAttendHead tiles %dx%d", bq, bk))
	}
	if bq > t {
		bq = t
	}
	if bk > t {
		bk = t
	}
	if len(ws) < AttendWorkspace(bq, bk) {
		panic(fmt.Sprintf("tensor: FlashAttendHead workspace %d, need %d", len(ws), AttendWorkspace(bq, bk)))
	}
	s := ws[:bq*bk]                // score / probability tile
	m := ws[bq*bk : bq*bk+bq]      // running row maxima
	l := ws[bq*bk+bq : bq*bk+2*bq] // running normalizers
	const negInf = float32(math.MaxFloat32) * -1
	for i0 := 0; i0 < t; i0 += bq {
		qn := bq
		if i0+qn > t {
			qn = t - i0
		}
		for r := 0; r < qn; r++ {
			m[r] = negInf
			l[r] = 0
			orow := out[(i0+r)*outStride:][:hd]
			for p := range orow {
				orow[p] = 0
			}
		}
		for j0 := 0; j0 < t; j0 += bk {
			kn := bk
			if j0+kn > t {
				kn = t - j0
			}
			// Score tile: s[r][c] = scale * q_{i0+r} · k_{j0+c}, through the
			// bound dot kernel (vec.go).
			for r := 0; r < qn; r++ {
				qrow := q[(i0+r)*stride:][:hd]
				srow := s[r*bk:][:kn]
				for c := 0; c < kn; c++ {
					krow := k[(j0+c)*stride:][:hd]
					srow[c] = vdot(qrow, krow) * scale
				}
			}
			// Online softmax: fold the tile into the running max/sum and
			// rescale the accumulated output rows.
			for r := 0; r < qn; r++ {
				srow := s[r*bk:][:kn]
				mNew := m[r]
				for _, sv := range srow {
					if sv > mNew {
						mNew = sv
					}
				}
				corr := float32(math.Exp(float64(m[r] - mNew)))
				orow := out[(i0+r)*outStride:][:hd]
				if corr != 1 {
					l[r] *= corr
					vscale(orow, corr)
				}
				m[r] = mNew
				for c := range srow {
					e := float32(math.Exp(float64(srow[c] - mNew)))
					srow[c] = e
					l[r] += e
				}
				// Accumulate the probability-weighted value rows.
				for c := 0; c < kn; c++ {
					a := srow[c]
					if a == 0 {
						continue
					}
					vaxpy(orow, a, v[(j0+c)*stride:][:hd])
				}
			}
		}
		for r := 0; r < qn; r++ {
			vscale(out[(i0+r)*outStride:][:hd], 1/l[r])
		}
	}
}

// NaiveAttendHead is the reference attention for one head: it materializes
// the full [t, t] score matrix, runs a max-subtracted two-pass softmax per
// row, then multiplies by V — the same math nn.MultiHeadAttention.Forward
// performs. It allocates and is single-threaded; reference/test use only.
func NaiveAttendHead(out []float32, outStride int, q, k, v []float32, stride, t, hd int, scale float32) {
	scores := make([]float32, t*t)
	for i := 0; i < t; i++ {
		qrow := q[i*stride:][:hd]
		srow := scores[i*t:][:t]
		maxv := float32(math.MaxFloat32) * -1
		for j := 0; j < t; j++ {
			krow := k[j*stride:][:hd]
			var dot float32
			for p, qv := range qrow {
				dot += qv * krow[p]
			}
			dot *= scale
			srow[j] = dot
			if dot > maxv {
				maxv = dot
			}
		}
		var sum float32
		for j := range srow {
			e := float32(math.Exp(float64(srow[j] - maxv)))
			srow[j] = e
			sum += e
		}
		inv := 1 / sum
		orow := out[i*outStride:][:hd]
		for p := range orow {
			orow[p] = 0
		}
		for j := 0; j < t; j++ {
			a := srow[j] * inv
			if a == 0 {
				continue
			}
			vrow := v[j*stride:][:hd]
			for p, vv := range vrow {
				orow[p] += a * vv
			}
		}
	}
}
