package tensor

import (
	"math"
	"testing"
)

func TestQuantizeU8Into(t *testing.T) {
	src := []float32{0, 1, -1, 0.4, -0.4, 0.5, -0.5, 200, -200, 63.5}
	dst := make([]uint8, len(src))
	QuantizeU8Into(dst, src, 1) // scale 1: q = clamp(round(v), -127, 127) + 127
	want := []int32{0, 1, -1, 0, 0, 1, -1, 127, -127, 64}
	for i := range want {
		if got := int32(dst[i]) - 127; got != want[i] {
			t.Errorf("QuantizeU8Into[%d] = %d, want %d (src %g)", i, got, want[i], src[i])
		}
	}
}

func TestQuantizeRowsU8Into(t *testing.T) {
	rows, k := 3, 37
	kp := PadK(k)
	src := make([]float32, rows*k)
	rng := NewRNG(2)
	for i := range src {
		src[i] = float32(rng.NormFloat64())
	}
	dst := make([]uint8, rows*kp)
	QuantizeU8Into(dst[:0], nil, 1) // no-op, exercises empty input
	QuantizeRowsU8Into(dst, src, rows, k, kp, 0.05)
	flat := make([]uint8, rows*k)
	QuantizeU8Into(flat, src, 0.05)
	for i := 0; i < rows; i++ {
		for j := 0; j < kp; j++ {
			got := dst[i*kp+j]
			if j < k {
				if got != flat[i*k+j] {
					t.Fatalf("row %d col %d: %d != flat %d", i, j, got, flat[i*k+j])
				}
			} else if got != QuantPadByte {
				t.Fatalf("row %d pad col %d: %d, want %d", i, j, got, QuantPadByte)
			}
		}
	}
}

func TestQuantizeChannelsI8(t *testing.T) {
	// Two rows with different ranges: each must get its own scale.
	w := []float32{1, -2, 0.5, 100, 50, -25}
	q, scales := QuantizeChannelsI8(w, 2, 3)
	if got, want := scales[0], float32(2.0/QuantClip); math.Abs(float64(got-want)) > 1e-7 {
		t.Errorf("row 0 scale = %g, want %g", got, want)
	}
	if got, want := scales[1], float32(100.0/QuantClip); math.Abs(float64(got-want)) > 1e-7 {
		t.Errorf("row 1 scale = %g, want %g", got, want)
	}
	// absmax of each row must quantize to exactly ±127.
	if q[1] != -127 {
		t.Errorf("row 0 absmax quantized to %d, want -127", q[1])
	}
	if q[3] != 127 {
		t.Errorf("row 1 absmax quantized to %d, want 127", q[3])
	}
	// Round trip error bounded by scale/2 per element.
	for r := 0; r < 2; r++ {
		for i := 0; i < 3; i++ {
			back := float32(q[r*3+i]) * scales[r]
			if diff := math.Abs(float64(back - w[r*3+i])); diff > float64(scales[r])/2+1e-6 {
				t.Errorf("round trip [%d,%d]: %g -> %g (scale %g)", r, i, w[r*3+i], back, scales[r])
			}
		}
	}
}

func TestIm2ColU8MatchesFloat(t *testing.T) {
	rng := NewRNG(7)
	for _, tc := range []struct{ n, c, h, w, k, stride, pad int }{
		{1, 1, 5, 5, 3, 1, 1},
		{2, 3, 8, 8, 3, 1, 1},
		{2, 4, 9, 7, 3, 2, 1},
		{1, 2, 6, 6, 1, 1, 0},
		{2, 3, 8, 8, 5, 2, 2},
	} {
		x := New(tc.n, tc.c, tc.h, tc.w)
		rng.FillNormal(x, 0, 1)
		// Quantize the input, unfold in bytes, and compare against unfolding
		// the dequantized input in float: identical element for element.
		scale := float32(0.05)
		xq := make([]uint8, x.Size())
		QuantizeU8Into(xq, x.Data(), scale)
		xdq := New(tc.n, tc.c, tc.h, tc.w)
		for i, q := range xq {
			xdq.Data()[i] = float32(int32(q)-127) * scale
		}
		oh, ow := ConvOut(tc.h, tc.k, tc.stride, tc.pad), ConvOut(tc.w, tc.k, tc.stride, tc.pad)
		rows, rowLen := tc.n*oh*ow, tc.c*tc.k*tc.k
		kp := PadK(rowLen)
		colsQ := make([]uint8, rows*kp)
		Im2ColU8Into(colsQ, xq, tc.n, tc.c, tc.h, tc.w, tc.k, tc.k, tc.stride, tc.pad)
		colsF := New(rows, rowLen)
		Im2ColInto(colsF, xdq, tc.k, tc.k, tc.stride, tc.pad)
		for r := 0; r < rows; r++ {
			for j := 0; j < kp; j++ {
				got := float32(int32(colsQ[r*kp+j])-127) * scale
				want := float32(0)
				if j < rowLen {
					want = colsF.Data()[r*rowLen+j]
				}
				if got != want {
					t.Fatalf("%+v: cols[%d,%d] = %g, want %g", tc, r, j, got, want)
				}
			}
		}
	}
}

// biasRows converts signed int8 rows [rows,k] to the biased padded layout.
func biasRows(a []int8, rows, k, kp int) []uint8 {
	out := make([]uint8, rows*kp)
	for i := range out {
		out[i] = QuantPadByte
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < k; j++ {
			out[i*kp+j] = uint8(int32(a[i*k+j]) + 127)
		}
	}
	return out
}

func qgemmCase(t *testing.T, seed int64, m, k, n int, bias, relu bool, qp QGemmParams) {
	t.Helper()
	rng := NewRNG(uint64(seed))
	a := make([]int8, m*k)
	b := make([]int8, n*k)
	af, bf := New(m, k), New(n, k)
	rng.FillNormal(af, 0, 60)
	rng.FillNormal(bf, 0, 60)
	for i, v := range af.Data() {
		a[i] = quantizeOne(v, 1)
	}
	for i, v := range bf.Data() {
		b[i] = quantizeOne(v, 1)
	}
	st := New(n)
	rng.FillNormal(st, 0, 0.01)
	scales := st.Data()
	var bs []float32
	if bias {
		bt := New(n)
		rng.FillNormal(bt, 0, 1)
		bs = bt.Data()
	}
	wScales := make([]float32, n)
	for i := range wScales {
		wScales[i] = 1 // combined scale passed directly via scales
	}
	qw := PackQuantWeights(b, n, k, wScales)
	ap := biasRows(a, m, k, qw.KP)
	got, want := New(m, n), New(m, n)
	QGEMMIntoP(got, ap, qw, m, scales, bs, relu, qp)
	NaiveQGEMMTransBInto(want, a, b, m, k, n, scales, bs, relu)
	for i := range got.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("m=%d k=%d n=%d bias=%v relu=%v %s: dst[%d] = %g, want %g (exact match required)",
				m, k, n, bias, relu, qp.String(), i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestQGEMMParity(t *testing.T) {
	for _, tc := range []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 7}, {4, 16, 4}, {17, 33, 9}, {8, 64, 31},
		{16, 144, 32}, {2, 7, 4}, {5, 96, 6}, {3, 64, 3}, {9, 100, 12},
	} {
		for _, bias := range []bool{false, true} {
			for _, relu := range []bool{false, true} {
				qgemmCase(t, int64(tc.m*1000+tc.k*10+tc.n), tc.m, tc.k, tc.n, bias, relu, DefaultQGemmParams())
			}
		}
	}
}

// TestQGEMMSaturatedExtremes drives every operand to ±127 so lane packing,
// block accumulation, and the bias-correction identity are exercised at
// their numeric bounds.
func TestQGEMMSaturatedExtremes(t *testing.T) {
	m, k, n := 3, 2*QGEMMBlock+5, 5
	patterns := []int8{127, -127, 0, 127, -127}
	a := make([]int8, m*k)
	b := make([]int8, n*k)
	for i := range a {
		a[i] = patterns[i%len(patterns)]
	}
	for i := range b {
		b[i] = patterns[(i*3+1)%len(patterns)]
	}
	scales := make([]float32, n)
	for i := range scales {
		scales[i] = 1
	}
	qw := PackQuantWeights(b, n, k, scales)
	ap := biasRows(a, m, k, qw.KP)
	got, want := New(m, n), New(m, n)
	QGEMMInto(got, ap, qw, m, scales, nil, false)
	NaiveQGEMMTransBInto(want, a, b, m, k, n, scales, nil, false)
	for i := range got.Data() {
		if got.Data()[i] != want.Data()[i] {
			t.Fatalf("dst[%d] = %g, want %g", i, got.Data()[i], want.Data()[i])
		}
	}
}

// FuzzQuantizedGEMMParity fuzzes shapes AND the activation-row tile: the
// int8 kernel must be bit-exact against the naive reference for every
// TileM, including tiles larger than m and the zero value (normed to the
// default), with ragged row remainders in between.
func FuzzQuantizedGEMMParity(f *testing.F) {
	f.Add(int64(1), 4, 9, 6, true, true, 0)
	f.Add(int64(2), 1, 1, 1, false, false, 1)
	f.Add(int64(3), 7, 33, 5, true, false, 3)
	f.Add(int64(4), 2, 64, 3, false, true, 32)
	f.Add(int64(5), 29, 80, 7, true, true, 16)
	f.Fuzz(func(t *testing.T, seed int64, m, k, n int, bias, relu bool, tileM int) {
		m, k, n = 1+absInt(m)%40, 1+absInt(k)%96, 1+absInt(n)%24
		qgemmCase(t, seed, m, k, n, bias, relu, QGemmParams{TileM: absInt(tileM) % (QGemmMaxTileM + 2)})
	})
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkQuantConvPipeline compares the full f32 conv hot loop
// (im2col + GEMM) against the int8 one (quantize + byte im2col + SWAR
// QGEMM with fused requantize) on VGG-sized layers.
func BenchmarkQuantConvPipeline(b *testing.B) {
	for _, tc := range []struct {
		name             string
		n, c, h, w, outC int
	}{
		{"c64x32x32_o64", 8, 64, 32, 32, 64},
		{"c32x64x64_o64", 8, 32, 64, 64, 64},
		{"c128x16x16_o128", 8, 128, 16, 16, 128},
	} {
		k, stride, pad := 3, 1, 1
		oh, ow := ConvOut(tc.h, k, stride, pad), ConvOut(tc.w, k, stride, pad)
		rows, rowLen := tc.n*oh*ow, tc.c*k*k
		rng := NewRNG(11)
		x := New(tc.n, tc.c, tc.h, tc.w)
		rng.FillNormal(x, 0, 1)
		// ~half the activations are post-ReLU zeros in real nets.
		for i, v := range x.Data() {
			if v < 0 {
				x.Data()[i] = 0
			}
		}
		wgt := New(tc.outC, rowLen)
		rng.FillNormal(wgt, 0, 0.1)
		qwData, wScales := QuantizeChannelsI8(wgt.Data(), tc.outC, rowLen)
		qw := PackQuantWeights(qwData, tc.outC, rowLen, wScales)
		xScale := QuantScale(3)
		scales := make([]float32, tc.outC)
		for i := range scales {
			scales[i] = xScale * wScales[i]
		}
		out := New(rows, tc.outC)

		b.Run(tc.name+"/f32", func(b *testing.B) {
			cols := New(rows, rowLen)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Im2ColInto(cols, x, k, k, stride, pad)
				MatMulTransBInto(out, cols, wgt)
			}
		})
		b.Run(tc.name+"/int8", func(b *testing.B) {
			xq := make([]uint8, x.Size())
			cols := make([]uint8, rows*qw.KP)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				QuantizeU8Into(xq, x.Data(), xScale)
				Im2ColU8Into(cols, xq, tc.n, tc.c, tc.h, tc.w, k, k, stride, pad)
				QGEMMInto(out, cols, qw, rows, scales, nil, false)
			}
		})
	}
}
