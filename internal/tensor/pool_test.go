package tensor

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMain raises GOMAXPROCS so the worker pool runs genuinely parallel
// even on single-core CI machines; the pool sizes itself at first use, and
// inline fallbacks would otherwise hide races from -race runs.
func TestMain(m *testing.M) {
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func TestWorkersAtLeastOne(t *testing.T) {
	if w := Workers(); w < 1 {
		t.Fatalf("Workers() = %d", w)
	}
}

// TestParallelForCoversRange asserts the chunking covers every index
// exactly once, for sizes around the inline cutoff and chunk boundaries.
func TestParallelForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 1000, 4096} {
		visits := make([]int32, n)
		ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

// TestParallelForNested asserts a ParallelFor body may itself call
// ParallelFor (the fused-engine branch pattern) without deadlock and with
// full coverage.
func TestParallelForNested(t *testing.T) {
	const outer, inner = 256, 256
	var total atomic.Int64
	ParallelFor(outer, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelFor(inner, func(jlo, jhi int) {
				total.Add(int64(jhi - jlo))
			})
		}
	})
	if got := total.Load(); got != outer*inner {
		t.Fatalf("nested coverage = %d, want %d", got, outer*inner)
	}
}

// TestParallelForConcurrent hammers the shared pool from many goroutines at
// once, the shape of parallel SA search evaluating candidates concurrently.
func TestParallelForConcurrent(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				visits := make([]int32, 512)
				ParallelFor(len(visits), func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Errorf("index %d visited %d times", i, v)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestMatMulDeterministicAcrossCalls asserts repeated blocked matmuls of
// the same operands produce bitwise-identical results regardless of how
// chunks land on pool workers — the property the ParallelOptimizer
// determinism guarantee is built on.
func TestMatMulDeterministicAcrossCalls(t *testing.T) {
	rng := NewRNG(21)
	a, b := New(129, 65), New(65, 93)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)
	ref := MatMul(a, b)
	for rep := 0; rep < 10; rep++ {
		got := MatMul(a, b)
		for i, v := range got.Data() {
			if v != ref.Data()[i] {
				t.Fatalf("rep %d: element %d differs bitwise: %g vs %g", rep, i, v, ref.Data()[i])
			}
		}
	}
}

// TestArenaRecycles asserts Get/Put round-trips zero length-n buffers and
// GetTensor hands back tensors of the right shape.
func TestArenaRecycles(t *testing.T) {
	p := GetBuf(128)
	if len(*p) != 128 {
		t.Fatalf("GetBuf len = %d", len(*p))
	}
	for i := range *p {
		(*p)[i] = 42
	}
	PutBuf(p)
	q := GetBuf(64)
	for i, v := range *q {
		if v != 0 {
			t.Fatalf("GetBuf returned dirty buffer at %d: %g", i, v)
		}
	}
	PutBuf(q)
	tt, h := GetTensor(3, 4, 5)
	if tt.Size() != 60 || tt.Rank() != 3 {
		t.Fatalf("GetTensor shape %v", tt.Shape())
	}
	PutBuf(h)
}
