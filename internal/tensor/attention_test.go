package tensor_test

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// attendDiff runs both attention kernels on the same strided head view and
// returns the largest elementwise divergence.
func attendDiff(t *testing.T, seed uint64, tokens, hd, stride, bq, bk int) float64 {
	if t != nil {
		t.Helper()
	}
	rng := tensor.NewRNG(seed)
	qkv := tensor.New(tokens * stride)
	rng.FillNormal(qkv, 0, 1)
	d := qkv.Data()
	// Head band at a nonzero column offset when the stride allows it, so the
	// strided addressing is actually exercised.
	off := 0
	if stride >= 2*hd {
		off = hd
	}
	got := make([]float32, tokens*hd)
	want := make([]float32, tokens*hd)
	scale := float32(1 / math.Sqrt(float64(hd)))
	ws := make([]float32, tensor.AttendWorkspace(bq, bk))
	tensor.FlashAttendHead(got, hd, d[off:], d[off:], d[off:], stride, tokens, hd, scale, bq, bk, ws)
	tensor.NaiveAttendHead(want, hd, d[off:], d[off:], d[off:], stride, tokens, hd, scale)
	var m float64
	for i := range got {
		if diff := math.Abs(float64(got[i] - want[i])); diff > m {
			m = diff
		}
	}
	return m
}

func TestFlashAttendHeadParity(t *testing.T) {
	cases := []struct{ tokens, hd, stride, bq, bk int }{
		{1, 1, 1, 1, 1},
		{4, 8, 24, 32, 64},  // tiles larger than t
		{16, 4, 12, 4, 4},   // t divisible by tiles
		{17, 8, 24, 4, 8},   // ragged tail tiles
		{33, 16, 48, 8, 32}, // several key tiles per query tile
		{64, 8, 8, 16, 16},  // dense stride == hd
		{25, 3, 11, 5, 7},   // odd everything
	}
	for _, c := range cases {
		if d := attendDiff(t, uint64(c.tokens*1000+c.hd), c.tokens, c.hd, c.stride, c.bq, c.bk); d > 1e-4 {
			t.Errorf("t=%d hd=%d stride=%d tiles %dx%d: flash diverges from naive by %g",
				c.tokens, c.hd, c.stride, c.bq, c.bk, d)
		}
	}
}

// TestFlashAttendHeadOverwrites: output rows must be fully overwritten, not
// accumulated into, because plan slabs are recycled dirty.
func TestFlashAttendHeadOverwrites(t *testing.T) {
	const tokens, hd = 9, 5
	rng := tensor.NewRNG(7)
	qkv := tensor.New(tokens * hd)
	rng.FillNormal(qkv, 0, 1)
	scale := float32(1 / math.Sqrt(float64(hd)))
	ws := make([]float32, tensor.AttendWorkspace(4, 4))
	clean := make([]float32, tokens*hd)
	tensor.FlashAttendHead(clean, hd, qkv.Data(), qkv.Data(), qkv.Data(), hd, tokens, hd, scale, 4, 4, ws)
	dirty := make([]float32, tokens*hd)
	for i := range dirty {
		dirty[i] = 1e6
	}
	tensor.FlashAttendHead(dirty, hd, qkv.Data(), qkv.Data(), qkv.Data(), hd, tokens, hd, scale, 4, 4, ws)
	for i := range clean {
		if clean[i] != dirty[i] {
			t.Fatalf("elem %d depends on prior output contents: %v vs %v", i, clean[i], dirty[i])
		}
	}
}

// FuzzTiledSoftmaxParity drives the tiled flash kernel against the naive
// full-matrix reference across random sequence lengths, head dims, strides,
// and tile sizes.
func FuzzTiledSoftmaxParity(f *testing.F) {
	f.Add(uint64(1), 8, 4, 2, 3)
	f.Add(uint64(2), 33, 7, 8, 16)
	f.Add(uint64(3), 1, 1, 1, 1)
	f.Add(uint64(4), 21, 16, 64, 5)
	f.Fuzz(func(t *testing.T, seed uint64, tokens, hd, bq, bk int) {
		tokens = 1 + abs(tokens)%48
		hd = 1 + abs(hd)%24
		bq = 1 + abs(bq)%(tokens+4)
		bk = 1 + abs(bk)%(tokens+4)
		stride := 3 * hd // packed-QKV addressing, the plan executor's layout
		if d := attendDiff(nil, seed, tokens, hd, stride, bq, bk); d > 1e-4 {
			t.Fatalf("t=%d hd=%d tiles %dx%d: flash diverges from naive by %g", tokens, hd, bq, bk, d)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
