package tensor

import "sync"

// The arena is a process-wide recycler for large transient float32 buffers:
// GEMM pack panels, im2col columns, and inference-engine workspace memory
// all draw from it. During SA search and distillation the same buffer sizes
// recur millions of times; recycling them keeps the allocation rate (and GC
// pause pressure) flat regardless of search length.
//
// Entries are *[]float32 so that Put does not allocate a fresh interface
// box for the slice header on every call (storing a bare []float32 in a
// sync.Pool heap-allocates the header each time).

var arena = sync.Pool{New: func() any { return new([]float32) }}

// GetBuf returns a zeroed buffer of length n from the arena. The returned
// pointer must be handed back with PutBuf when the buffer is dead; the
// slice must not be used after that.
func GetBuf(n int) *[]float32 {
	p := arena.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
		return p
	}
	*p = (*p)[:n]
	b := *p
	for i := range b {
		b[i] = 0
	}
	return p
}

// GetBufDirty is GetBuf without the zero fill, for callers that overwrite
// every element before reading.
func GetBufDirty(n int) *[]float32 {
	p := arena.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	} else {
		*p = (*p)[:n]
	}
	return p
}

// GrowBuf resizes a long-lived arena lease to length n: the buffer is kept
// when its capacity already suffices, and exchanged through the arena
// otherwise. It is the resize primitive for execution-plan slab leases,
// whose length follows the largest batch an instance has seen. p may be nil
// (first lease). Contents are unspecified either way.
func GrowBuf(p *[]float32, n int) *[]float32 {
	if p != nil && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	if p != nil {
		PutBuf(p)
	}
	return GetBufDirty(n)
}

// PutBuf returns a buffer to the arena.
func PutBuf(p *[]float32) {
	if p == nil {
		return
	}
	arena.Put(p)
}

// GetTensor returns a tensor backed by an arena buffer, plus the handle to
// release it. The tensor contents are zeroed. The tensor must not be used
// after PutBuf(handle).
func GetTensor(shape ...int) (*Tensor, *[]float32) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	p := GetBuf(n)
	return FromSlice(*p, shape...), p
}

// GetTensorDirty is GetTensor without the zero fill.
func GetTensorDirty(shape ...int) (*Tensor, *[]float32) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	p := GetBufDirty(n)
	return FromSlice(*p, shape...), p
}
