package tensor

// Vector kernel dispatch. The blocked GEMM, the attention kernel, and the
// conv epilogue all bottom out in the small set of primitives declared
// here as function variables. The package default binds the pure-Go
// 8-wide-lane implementations from microgo.go; on amd64 with AVX2+FMA the
// init in vec_amd64.go rebinds them to hand-written assembly microkernels
// (vec_amd64.s). The binding is decided once at process start, so kernel
// selection never changes mid-run and results stay deterministic across
// worker counts.
//
// Forcing the pure-Go tier:
//
//   - build with `-tags gmorph_novec` (vec_amd64.go and vec_amd64.s drop
//     out of the build entirely), or
//   - set GMORPH_NOVEC=1 in the environment (runtime opt-out, same
//     binary).
//
// Parity with naive.go is enforced for both tiers by
// kernels_parity_test.go and the fuzz harness; CI runs the suite with the
// vector tier enabled and forced off.

// microFn is an MR x NR GEMM microkernel: c[0:MR][0:NR] += a[0:MR][0:k] @
// bp, where a rows are lda floats apart, c rows ldc floats apart, and bp
// is a packed strip holding k rows of NR contiguous floats.
type microFn func(k int, a *float32, lda int, bp *float32, c *float32, ldc int)

// micro1Fn is the single-row variant for MR tails: c[0:NR] += a[0:k] @ bp.
type micro1Fn func(k int, a *float32, bp *float32, c *float32)

var (
	// vecActive reports whether the assembly microkernel tier was
	// detected and bound at init.
	vecActive bool
	// vecKind names the bound tier for reports and startup logs.
	vecKind = "go8"

	// GEMM microkernels; nil unless the assembly tier is active (the
	// blocked driver falls back to the go* lane micros).
	microGemm4x16 microFn
	microGemm8x8  microFn
	microGemm1x16 micro1Fn
	microGemm1x8  micro1Fn

	// Attention / epilogue primitives. Contracts: vdot requires
	// len(b) >= len(a); vaxpy requires len(x) >= len(y).
	vdot   func(a, b []float32) float32              = goDot
	vaxpy  func(y []float32, a float32, x []float32) = goAxpy
	vscale func(y []float32, a float32)              = goScale
)

// VecKind reports which kernel tier this process bound at startup: "avx2"
// for the assembly microkernels, "go8" for the pure-Go 8-wide-lane
// fallback (non-amd64, gmorph_novec builds, GMORPH_NOVEC=1, or a CPU
// without AVX2+FMA).
func VecKind() string { return vecKind }

// VecActive reports whether the assembly tier is bound.
func VecActive() bool { return vecActive }
