package tensor

import (
	"fmt"
	"sync"
)

// GEMM driver. The implementation is cache-blocked in the BLIS style: B is
// packed into KC x NC panels laid out as NR-wide column strips (zero-padded
// to NR, so every strip row is a full vector row), and an MR x NR
// register-blocked microkernel — AVX2 assembly when bound, pure-Go
// [8]float32 lanes otherwise; see vec.go — sweeps the panel for each MR-row
// tile of the destination. Destination tiles are distributed over the
// shared worker pool by absolute tile index, and every kernel accumulates k
// in ascending order, so each output element sees an identical accumulation
// order no matter how tiles are chunked: results are deterministic across
// GOMAXPROCS settings. NaiveMatMulInto in naive.go preserves the reference
// semantics; kernels_parity_test.go holds the two within 1e-4 across both
// kernel tiers and arbitrary GemmParams.
//
// MatMulInto/MatMulTransBInto run the shipped default parameters; the
// *P variants take explicit GemmParams so the autotuner (internal/tune)
// can stamp per-layer-shape winners into compiled plans.

// gemmEngine carries the blocked driver's parallel-body state (the zeroing
// pass and the per-panel tile sweep) through the worker pool without
// per-call closure captures.
type gemmEngine struct {
	dd, ad, panel []float32
	m, n, lda     int
	j0, jw        int // current column panel
	p0, kw        int // current k panel
	mr, nr        int
	nstrips       int
	kern          microFn  // full-tile kernel, assembly tier (nil when unbound)
	kern1         micro1Fn // single-row M-tail kernel, assembly tier
	goFull        microFn  // full-tile kernel, pure-Go lane tier
	zero          func(lo, hi int)
	tiles         func(lo, hi int)
}

var gemmEngines = sync.Pool{New: func() any {
	e := &gemmEngine{}
	e.zero = e.runZero
	e.tiles = e.runTiles
	return e
}}

func (e *gemmEngine) runZero(lo, hi int) {
	row := e.dd[lo*e.n : hi*e.n]
	for x := range row {
		row[x] = 0
	}
}

// runTiles accumulates destination tiles [tlo, thi) against the current
// packed panel. A tile is MR consecutive destination rows; within it the
// panel is swept strip by strip, dispatching the full-tile microkernel,
// the single-row tail kernel, or the generic ragged kernel depending on
// how much of the tile is in range.
func (e *gemmEngine) runTiles(tlo, thi int) {
	mr, nr := e.mr, e.nr
	kw, lda, n := e.kw, e.lda, e.n
	for t := tlo; t < thi; t++ {
		i := t * mr
		rows := e.m - i
		if rows > mr {
			rows = mr
		}
		ab := e.ad[i*lda+e.p0:]
		for s := 0; s < e.nstrips; s++ {
			jj := e.j0 + s*nr
			w := e.j0 + e.jw - jj
			if w > nr {
				w = nr
			}
			bp := e.panel[s*kw*nr:]
			cb := e.dd[i*n+jj:]
			switch {
			case rows == mr && w == nr && e.kern != nil:
				e.kern(kw, &ab[0], lda, &bp[0], &cb[0], n)
			case rows == mr && w == nr:
				e.goFull(kw, &ab[0], lda, &bp[0], &cb[0], n)
			case w == nr && e.kern1 != nil:
				for r := 0; r < rows; r++ {
					e.kern1(kw, &ab[r*lda], &bp[0], &cb[r*n])
				}
			default:
				goGemmStrip(kw, ab, lda, rows, bp, nr, cb, n, w)
			}
		}
	}
}

// gemmBlocked is the shared panel loop: dst[m,n] = a[m,k] @ B where B is
// b[k,n] (transB false) or b[n,k] read transposed (transB true). dst is
// zeroed first; each (column panel, k panel) pair is packed once and then
// accumulated by all destination tiles.
func gemmBlocked(dd, ad, bd []float32, m, n, k int, transB bool, gp GemmParams) {
	kc, nc, mr, nr := gp.norm()
	e := gemmEngines.Get().(*gemmEngine)
	e.dd, e.ad = dd, ad
	e.m, e.n, e.lda = m, n, k
	e.mr, e.nr = mr, nr
	e.kern, e.kern1 = nil, nil
	if vecActive {
		if nr == 16 {
			e.kern, e.kern1 = microGemm4x16, microGemm1x16
		} else {
			e.kern, e.kern1 = microGemm8x8, microGemm1x8
		}
	}
	if nr == 16 {
		e.goFull = goGemm4x16
	} else {
		e.goFull = goGemm8x8
	}
	parallelFor(m, e.zero)
	maxW := nc
	if n < maxW {
		maxW = n
	}
	maxStrips := (maxW + nr - 1) / nr
	buf := GetBufDirty(kc * maxStrips * nr)
	e.panel = *buf
	ntiles := (m + mr - 1) / mr
	for j0 := 0; j0 < n; j0 += nc {
		jw := min(nc, n-j0)
		for p0 := 0; p0 < k; p0 += kc {
			kw := min(kc, k-p0)
			if transB {
				packPanelBT(e.panel, bd, k, j0, jw, p0, kw, nr)
			} else {
				packPanelB(e.panel, bd, n, j0, jw, p0, kw, nr)
			}
			e.j0, e.jw, e.p0, e.kw = j0, jw, p0, kw
			e.nstrips = (jw + nr - 1) / nr
			parallelFor(ntiles, e.tiles)
		}
	}
	PutBuf(buf)
	e.dd, e.ad, e.panel = nil, nil, nil
	gemmEngines.Put(e)
}

// packPanelB packs B[p0:p0+kw, j0:j0+jw] of a row-major [*, n] matrix into
// NR-wide column strips: strip s holds columns j0+s*nr onward, row p of the
// strip at panel[(s*kw+p)*nr:]. The last strip is zero-padded to nr so the
// microkernels always read full vector rows.
func packPanelB(panel, bd []float32, n, j0, jw, p0, kw, nr int) {
	nstrips := (jw + nr - 1) / nr
	for s := 0; s < nstrips; s++ {
		js := j0 + s*nr
		w := min(nr, j0+jw-js)
		dstS := panel[s*kw*nr:][:kw*nr]
		if w < nr {
			for x := range dstS {
				dstS[x] = 0
			}
		}
		for p := 0; p < kw; p++ {
			copy(dstS[p*nr:p*nr+w], bd[(p0+p)*n+js:][:w])
		}
	}
}

// packPanelBT packs the same strips from a transposed operand: B is [n, k]
// row-major and strip column jj is B's row js+jj, so the pack transposes
// on the fly (unit-stride reads from B, nr-stride writes into the strip).
func packPanelBT(panel, bd []float32, k, j0, jw, p0, kw, nr int) {
	nstrips := (jw + nr - 1) / nr
	for s := 0; s < nstrips; s++ {
		js := j0 + s*nr
		w := min(nr, j0+jw-js)
		dstS := panel[s*kw*nr:][:kw*nr]
		if w < nr {
			for x := range dstS {
				dstS[x] = 0
			}
		}
		for jj := 0; jj < w; jj++ {
			brow := bd[(js+jj)*k+p0:][:kw]
			for p, v := range brow {
				dstS[p*nr+jj] = v
			}
		}
	}
}

// MatMulInto computes dst = a @ b for 2-D tensors: a is [m,k], b is [k,n],
// dst is [m,n]. dst is overwritten.
func MatMulInto(dst, a, b *Tensor) {
	MatMulIntoP(dst, a, b, DefaultGemmParams())
}

// MatMulIntoP is MatMulInto with explicit blocking parameters.
func MatMulIntoP(dst, a, b *Tensor, gp GemmParams) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulInto wants rank-2 operands, got %v @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	gemmBlocked(dst.data, a.data, b.data, m, n, k, false, gp)
}

// MatMul returns a @ b as a new [m,n] tensor.
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ @ b where a is [k,m], b is [k,n],
// dst is [m,n]. Used for weight gradients (training only — not a serving
// hot path, so it keeps the scalar blocked-accumulate structure); a is
// read with stride m.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch %vᵀ @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n:][:n]
			for x := range drow {
				drow[x] = 0
			}
			p := 0
			for ; p+3 < k; p += 4 {
				a0 := ad[p*m+i]
				a1 := ad[(p+1)*m+i]
				a2 := ad[(p+2)*m+i]
				a3 := ad[(p+3)*m+i]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := bd[p*n:][:n]
				b1 := bd[(p+1)*n:][:n]
				b2 := bd[(p+2)*n:][:n]
				b3 := bd[(p+3)*n:][:n]
				for j := range drow {
					drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n:][:n]
				for j := range drow {
					drow[j] += av * brow[j]
				}
			}
		}
	})
}

// MatMulTransBInto computes dst = a @ bᵀ where a is [m,k], b is [n,k],
// dst is [m,n]. Used for the im2col convolution forward pass and input
// gradients; the pack stage transposes B into the strip layout so the
// same microkernels run as for MatMulInto.
func MatMulTransBInto(dst, a, b *Tensor) {
	MatMulTransBIntoP(dst, a, b, DefaultGemmParams())
}

// MatMulTransBIntoP is MatMulTransBInto with explicit blocking parameters.
func MatMulTransBIntoP(dst, a, b *Tensor, gp GemmParams) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch %v @ %vᵀ -> %v", a.shape, b.shape, dst.shape))
	}
	gemmBlocked(dst.data, a.data, b.data, m, n, k, true, gp)
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D wants rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j*m+i] = v
		}
	}
	return out
}
