package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// workers is the degree of parallelism used by the heavy kernels.
var workers = runtime.GOMAXPROCS(0)

// parallelFor splits [0,n) into chunks and runs body on each chunk
// concurrently. It runs inline when n is small.
func parallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := workers
	if w > n {
		w = n
	}
	if w <= 1 || n < 64 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulInto computes dst = a @ b for 2-D tensors: a is [m,k], b is [k,n],
// dst is [m,n]. dst is overwritten.
func MatMulInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulInto wants rank-2 operands, got %v @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			for x := range drow {
				drow[x] = 0
			}
			arow := ad[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMul returns a @ b as a new [m,n] tensor.
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ @ b where a is [k,m], b is [k,n],
// dst is [m,n]. Used for weight gradients.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch %vᵀ @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			for x := range drow {
				drow[x] = 0
			}
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTransBInto computes dst = a @ bᵀ where a is [m,k], b is [n,k],
// dst is [m,n]. Used for input gradients.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch %v @ %vᵀ -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			drow := dd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				drow[j] = s
			}
		}
	})
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D wants rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j*m+i] = v
		}
	}
	return out
}
