package tensor

import (
	"fmt"
	"sync"
)

// GEMM kernels. The implementation is cache-blocked: B is processed in
// KC x NC panels (packed into a contiguous arena buffer when the panel is
// narrower than B, so the inner loops stream unit-stride memory), and the
// float32 inner kernel consumes four k-steps per pass over the destination
// row, which cuts destination-row read/write traffic 4x versus the naive
// triple loop and gives the compiler independent multiply-add chains to
// schedule. Rows of the destination are distributed over the shared worker
// pool; every output element is accumulated in the same order no matter how
// rows are chunked, so results are deterministic across GOMAXPROCS
// settings. NaiveMatMulInto in naive.go preserves the reference semantics;
// kernels_parity_test.go holds the two within 1e-4.
const (
	// gemmKC is the k-extent of a packed B panel (rows of B per panel).
	gemmKC = 256
	// gemmNC is the n-extent of a packed B panel (columns of B per panel).
	// A full panel is gemmKC*gemmNC*4 bytes = 256 KiB, sized to stay
	// L2-resident while the four active panel rows (4 KiB) sit in L1.
	gemmNC = 256
)

// gemmJob carries MatMulInto's parallel-body state (the zeroing pass and
// the per-panel accumulate pass) through the worker pool without per-call
// closure captures.
type gemmJob struct {
	dd, ad, panel        []float32
	n, k, j0, jw, p0, p1 int
	zero, accum          func(lo, hi int)
}

var gemmJobs = sync.Pool{New: func() any {
	jb := &gemmJob{}
	jb.zero = jb.runZero
	jb.accum = jb.runAccum
	return jb
}}

func (jb *gemmJob) runZero(lo, hi int) {
	row := jb.dd[lo*jb.n : hi*jb.n]
	for x := range row {
		row[x] = 0
	}
}

func (jb *gemmJob) runAccum(lo, hi int) {
	gemmAccum(jb.dd, jb.ad, jb.panel, lo, hi, jb.n, jb.k, jb.j0, jb.jw, jb.p0, jb.p1)
}

// MatMulInto computes dst = a @ b for 2-D tensors: a is [m,k], b is [k,n],
// dst is [m,n]. dst is overwritten.
func MatMulInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulInto wants rank-2 operands, got %v @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch %v @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	jb := gemmJobs.Get().(*gemmJob)
	jb.dd, jb.ad, jb.n, jb.k = dd, ad, n, k
	parallelFor(m, jb.zero)
	var panelBuf *[]float32
	for j0 := 0; j0 < n; j0 += gemmNC {
		j1 := min(j0+gemmNC, n)
		jw := j1 - j0
		for p0 := 0; p0 < k; p0 += gemmKC {
			p1 := min(p0+gemmKC, k)
			var panel []float32
			if jw == n {
				// The panel is full-width: B's rows are already contiguous.
				panel = bd[p0*n : p1*n]
			} else {
				if panelBuf == nil {
					panelBuf = GetBufDirty(gemmKC * gemmNC)
				}
				panel = (*panelBuf)[:(p1-p0)*jw]
				for p := p0; p < p1; p++ {
					copy(panel[(p-p0)*jw:(p-p0+1)*jw], bd[p*n+j0:p*n+j1])
				}
			}
			jb.panel, jb.j0, jb.jw, jb.p0, jb.p1 = panel, j0, jw, p0, p1
			parallelFor(m, jb.accum)
		}
	}
	if panelBuf != nil {
		PutBuf(panelBuf)
	}
	jb.dd, jb.ad, jb.panel = nil, nil, nil
	gemmJobs.Put(jb)
}

// gemmAccum accumulates dst[i0:i1, j0:j0+jw] += a[i0:i1, p0:p1] @ panel,
// where panel holds B[p0:p1, j0:j0+jw] row-major with row stride jw. The
// inner kernel folds four k-steps into one pass over the destination row.
func gemmAccum(dd, ad, panel []float32, i0, i1, n, k, j0, jw, p0, p1 int) {
	kw := p1 - p0
	for i := i0; i < i1; i++ {
		// The [off:][:jw] two-step slicing gives every slice the symbolic
		// length jw, which lets the compiler eliminate bounds checks in the
		// inner loops.
		drow := dd[i*n+j0:][:jw]
		arow := ad[i*k+p0:][:kw]
		p := 0
		for ; p+3 < kw; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue // ReLU-sparse activations: whole group is a no-op
			}
			b0 := panel[p*jw:][:jw]
			b1 := panel[(p+1)*jw:][:jw]
			b2 := panel[(p+2)*jw:][:jw]
			b3 := panel[(p+3)*jw:][:jw]
			for j := range drow {
				drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < kw; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := panel[p*jw:][:jw]
			for j := range drow {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMul returns a @ b as a new [m,n] tensor.
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[1])
	MatMulInto(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ @ b where a is [k,m], b is [k,n],
// dst is [m,n]. Used for weight gradients. Same blocked-accumulate
// structure as MatMulInto; a is read with stride m.
func MatMulTransAInto(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch %vᵀ @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n:][:n]
			for x := range drow {
				drow[x] = 0
			}
			p := 0
			for ; p+3 < k; p += 4 {
				a0 := ad[p*m+i]
				a1 := ad[(p+1)*m+i]
				a2 := ad[(p+2)*m+i]
				a3 := ad[(p+3)*m+i]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				b0 := bd[p*n:][:n]
				b1 := bd[(p+1)*n:][:n]
				b2 := bd[(p+2)*n:][:n]
				b3 := bd[(p+3)*n:][:n]
				for j := range drow {
					drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				}
			}
			for ; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n:][:n]
				for j := range drow {
					drow[j] += av * brow[j]
				}
			}
		}
	})
}

// MatMulTransBInto computes dst = a @ bᵀ where a is [m,k], b is [n,k],
// dst is [m,n]. Used for the im2col convolution forward pass and input
// gradients. Both operands stream unit-stride; four output columns are
// produced per pass over a's row, giving four independent dot-product
// chains.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch %v @ %vᵀ -> %v", a.shape, b.shape, dst.shape))
	}
	jb := gemmTBJobs.Get().(*gemmTBJob)
	jb.ad, jb.bd, jb.dd, jb.k, jb.n = a.data, b.data, dst.data, k, n
	parallelFor(m, jb.body)
	jb.ad, jb.bd, jb.dd = nil, nil, nil
	gemmTBJobs.Put(jb)
}

// gemmTBJob carries MatMulTransBInto's parallel-body state through the pool.
type gemmTBJob struct {
	ad, bd, dd []float32
	k, n       int
	body       func(lo, hi int)
}

var gemmTBJobs = sync.Pool{New: func() any {
	jb := &gemmTBJob{}
	jb.body = jb.run
	return jb
}}

func (jb *gemmTBJob) run(lo, hi int) {
	ad, bd, dd, k, n := jb.ad, jb.bd, jb.dd, jb.k, jb.n
	for i := lo; i < hi; i++ {
		arow := ad[i*k:][:k]
		drow := dd[i*n : (i+1)*n]
		j := 0
		for ; j+3 < n; j += 4 {
			b0 := bd[j*k:][:k]
			b1 := bd[(j+1)*k:][:k]
			b2 := bd[(j+2)*k:][:k]
			b3 := bd[(j+3)*k:][:k]
			var s0, s1, s2, s3 float32
			for p, av := range arow {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			drow[j] = s0
			drow[j+1] = s1
			drow[j+2] = s2
			drow[j+3] = s3
		}
		for ; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func Transpose2D(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D wants rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j*m+i] = v
		}
	}
	return out
}
