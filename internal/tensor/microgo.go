package tensor

import "unsafe"

// Pure-Go 8-wide-lane kernels: the portable tier behind the dispatch
// variables in vec.go, and the only tier on non-amd64, under the
// gmorph_novec build tag, or when the CPU lacks AVX2+FMA. They mirror the
// assembly microkernels' register blocking over [8]float32 lanes — the
// gonum-style layout — so both tiers consume the same packed-strip format
// and the blocked driver in matmul.go never needs to know which is bound.
//
// goGemmStrip is the fully general variant (any rows <= MR, any width <=
// NR) and handles every ragged tile: M tails when no assembly single-row
// kernel is bound, and N tails always, since the packed strip is
// zero-padded to NR but the destination must not be written past its true
// width.

// goGemm4x16 accumulates a full 4x16 tile: c[r][0:16] += a[r][0:k] @ bp
// for r in 0..3, with a rows lda floats apart, c rows ldc floats apart,
// and bp packed as k rows of 16 contiguous floats.
func goGemm4x16(k int, a *float32, lda int, bp *float32, c *float32, ldc int) {
	as := unsafe.Slice(a, 3*lda+k)
	bs := unsafe.Slice(bp, k*16)
	cs := unsafe.Slice(c, 3*ldc+16)
	var acc [4][2][8]float32
	for r := 0; r < 4; r++ {
		crow := cs[r*ldc:][:16]
		c0 := (*[8]float32)(crow[0:8])
		c1 := (*[8]float32)(crow[8:16])
		acc[r][0] = *c0
		acc[r][1] = *c1
	}
	a0 := as[0*lda:][:k]
	a1 := as[1*lda:][:k]
	a2 := as[2*lda:][:k]
	a3 := as[3*lda:][:k]
	for p := 0; p < k; p++ {
		brow := bs[p*16:][:16]
		b0 := (*[8]float32)(brow[0:8])
		b1 := (*[8]float32)(brow[8:16])
		v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
		for x := 0; x < 8; x++ {
			b0x, b1x := b0[x], b1[x]
			acc[0][0][x] += v0 * b0x
			acc[0][1][x] += v0 * b1x
			acc[1][0][x] += v1 * b0x
			acc[1][1][x] += v1 * b1x
			acc[2][0][x] += v2 * b0x
			acc[2][1][x] += v2 * b1x
			acc[3][0][x] += v3 * b0x
			acc[3][1][x] += v3 * b1x
		}
	}
	for r := 0; r < 4; r++ {
		crow := cs[r*ldc:][:16]
		*(*[8]float32)(crow[0:8]) = acc[r][0]
		*(*[8]float32)(crow[8:16]) = acc[r][1]
	}
}

// goGemm8x8 accumulates a full 8x8 tile: c[r][0:8] += a[r][0:k] @ bp for r
// in 0..7, bp packed as k rows of 8 contiguous floats.
func goGemm8x8(k int, a *float32, lda int, bp *float32, c *float32, ldc int) {
	as := unsafe.Slice(a, 7*lda+k)
	bs := unsafe.Slice(bp, k*8)
	cs := unsafe.Slice(c, 7*ldc+8)
	var acc [8][8]float32
	for r := 0; r < 8; r++ {
		acc[r] = *(*[8]float32)(cs[r*ldc:][:8])
	}
	for p := 0; p < k; p++ {
		b0 := (*[8]float32)(bs[p*8:][:8])
		for r := 0; r < 8; r++ {
			v := as[r*lda+p]
			lane := &acc[r]
			for x := 0; x < 8; x++ {
				lane[x] += v * b0[x]
			}
		}
	}
	for r := 0; r < 8; r++ {
		*(*[8]float32)(cs[r*ldc:][:8]) = acc[r]
	}
}

// goGemmStrip is the ragged-tile kernel: c[r][0:w] += a[r][0:kc] @ bp for
// r in [0, rows), where bp is a packed strip of kc rows x nr floats
// (zero-padded past column w). The four-k-step unroll and the zero-group
// skip match the pre-vector scalar GEMM, so the fallback tier keeps its
// ReLU-sparsity win.
func goGemmStrip(kc int, ad []float32, lda, rows int, bp []float32, nr int, cd []float32, ldc, w int) {
	for r := 0; r < rows; r++ {
		arow := ad[r*lda:][:kc]
		crow := cd[r*ldc:][:w]
		p := 0
		for ; p+3 < kc; p += 4 {
			a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := bp[p*nr:][:w]
			b1 := bp[(p+1)*nr:][:w]
			b2 := bp[(p+2)*nr:][:w]
			b3 := bp[(p+3)*nr:][:w]
			for j := range crow {
				crow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < kc; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bp[p*nr:][:w]
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// goDot returns a . b over len(a) elements (len(b) >= len(a)), with four
// independent partial sums so the adds pipeline.
func goDot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	p := 0
	for ; p+7 < len(a); p += 8 {
		aa := (*[8]float32)(a[p : p+8])
		bb := (*[8]float32)(b[p : p+8])
		s0 += aa[0]*bb[0] + aa[4]*bb[4]
		s1 += aa[1]*bb[1] + aa[5]*bb[5]
		s2 += aa[2]*bb[2] + aa[6]*bb[6]
		s3 += aa[3]*bb[3] + aa[7]*bb[7]
	}
	for ; p < len(a); p++ {
		s0 += a[p] * b[p]
	}
	return (s0 + s1) + (s2 + s3)
}

// goAxpy computes y += a * x over len(y) elements (len(x) >= len(y)).
func goAxpy(y []float32, a float32, x []float32) {
	p := 0
	for ; p+7 < len(y); p += 8 {
		yy := (*[8]float32)(y[p : p+8])
		xx := (*[8]float32)(x[p : p+8])
		for i := 0; i < 8; i++ {
			yy[i] += a * xx[i]
		}
	}
	for ; p < len(y); p++ {
		y[p] += a * x[p]
	}
}

// goScale computes y *= a in place.
func goScale(y []float32, a float32) {
	p := 0
	for ; p+7 < len(y); p += 8 {
		yy := (*[8]float32)(y[p : p+8])
		for i := 0; i < 8; i++ {
			yy[i] *= a
		}
	}
	for ; p < len(y); p++ {
		y[p] *= a
	}
}
