package tensor

import "fmt"

// This file retains straightforward, single-threaded reference
// implementations of the hot-path kernels. They are the ground truth for
// the parity and fuzz tests in kernels_parity_test.go: every optimized
// kernel (blocked GEMM, im2col convolution) must agree with its naive
// counterpart to within 1e-4 across arbitrary shapes. They are not used on
// any hot path.

// NaiveMatMulInto computes dst = a @ b with the textbook triple loop.
func NaiveMatMulInto(dst, a, b *Tensor) {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		panic(fmt.Sprintf("tensor: NaiveMatMulInto wants rank-2 operands, got %v @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: NaiveMatMulInto shape mismatch %v @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	for i := 0; i < m; i++ {
		drow := dd[i*n : (i+1)*n]
		for x := range drow {
			drow[x] = 0
		}
		arow := ad[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// NaiveMatMul returns a @ b as a new [m,n] tensor via NaiveMatMulInto.
func NaiveMatMul(a, b *Tensor) *Tensor {
	out := New(a.shape[0], b.shape[1])
	NaiveMatMulInto(out, a, b)
	return out
}

// NaiveMatMulTransAInto computes dst = aᵀ @ b where a is [k,m].
func NaiveMatMulTransAInto(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: NaiveMatMulTransAInto shape mismatch %vᵀ @ %v -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	for i := 0; i < m; i++ {
		drow := dd[i*n : (i+1)*n]
		for x := range drow {
			drow[x] = 0
		}
		for p := 0; p < k; p++ {
			av := ad[p*m+i]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// NaiveMatMulTransBInto computes dst = a @ bᵀ where b is [n,k].
func NaiveMatMulTransBInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: NaiveMatMulTransBInto shape mismatch %v @ %vᵀ -> %v", a.shape, b.shape, dst.shape))
	}
	ad, bd, dd := a.data, b.data, dst.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		drow := dd[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			drow[j] = s
		}
	}
}

// NaiveConv2d runs a direct (seven-loop, no im2col) 2-D convolution over
// x [N,C,H,W] with weight [outC, C*KH*KW] (the layout nn.Conv2d uses) and
// an optional bias of length outC. It returns [N,outC,OH,OW].
func NaiveConv2d(x, weight *Tensor, bias []float32, kh, kw, stride, pad int) *Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: NaiveConv2d wants NCHW input, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if weight.Rank() != 2 || weight.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: NaiveConv2d weight %v incompatible with input %v and kernel %dx%d", weight.shape, x.shape, kh, kw))
	}
	outC := weight.shape[0]
	if bias != nil && len(bias) != outC {
		panic(fmt.Sprintf("tensor: NaiveConv2d bias length %d, want %d", len(bias), outC))
	}
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	out := New(n, outC, oh, ow)
	xd, wd, od := x.data, weight.data, out.data
	for ni := 0; ni < n; ni++ {
		for oc := 0; oc < outC; oc++ {
			wrow := wd[oc*c*kh*kw : (oc+1)*c*kh*kw]
			var b float32
			if bias != nil {
				b = bias[oc]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					s := b
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= w {
									continue
								}
								s += xd[((ni*c+ci)*h+iy)*w+ix] * wrow[(ci*kh+ky)*kw+kx]
							}
						}
					}
					od[((ni*outC+oc)*oh+oy)*ow+ox] = s
				}
			}
		}
	}
	return out
}
