// Package tensor provides dense float32 tensors and the numeric kernels
// (matmul, im2col convolution, pooling, interpolation, elementwise algebra)
// that the nn package builds differentiable layers on top of.
//
// Tensors are row-major over a flat []float32 backing slice. The package is
// deliberately small: it implements exactly the operations the GMorph model
// zoo needs, with parallel kernels for the hot paths.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
// A zero-dimensional tensor (no shape) holds a single scalar.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Tensor) Shape() []int { return t.shape }

// Data returns the flat backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Dim returns the length of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Reshape returns a view sharing data with t under a new shape. One
// dimension may be -1 to be inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer, n := -1, 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: multiple -1 dims in Reshape")
			}
			infer = i
			continue
		}
		n *= d
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dim reshaping %v to %v", t.shape, shape))
		}
		shape[infer] = len(t.data) / n
		n *= shape[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v to %v changes element count", t.shape, shape))
	}
	return &Tensor{shape: shape, data: t.data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// String renders a short description (shape plus a few leading values).
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if n < len(t.data) {
		b.WriteString(", ...")
	}
	b.WriteString("]")
	return b.String()
}

// --- elementwise algebra -------------------------------------------------

// AddInto computes dst = a + b elementwise. All three must be the same size.
func AddInto(dst, a, b *Tensor) {
	checkSameSize("AddInto", dst, a, b)
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
}

// SubInto computes dst = a - b elementwise.
func SubInto(dst, a, b *Tensor) {
	checkSameSize("SubInto", dst, a, b)
	for i := range dst.data {
		dst.data[i] = a.data[i] - b.data[i]
	}
}

// MulInto computes dst = a * b elementwise.
func MulInto(dst, a, b *Tensor) {
	checkSameSize("MulInto", dst, a, b)
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
}

// Add returns a + b as a new tensor.
func Add(a, b *Tensor) *Tensor {
	out := New(a.shape...)
	AddInto(out, a, b)
	return out
}

// Sub returns a - b as a new tensor.
func Sub(a, b *Tensor) *Tensor {
	out := New(a.shape...)
	SubInto(out, a, b)
	return out
}

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScaled accumulates t += s * src.
func (t *Tensor) AddScaled(s float32, src *Tensor) {
	checkSameSize("AddScaled", t, src, src)
	for i := range t.data {
		t.data[i] += s * src.data[i]
	}
}

func checkSameSize(op string, ts ...*Tensor) {
	n := len(ts[0].data)
	for _, t := range ts[1:] {
		if len(t.data) != n {
			panic(fmt.Sprintf("tensor: %s size mismatch %v vs %v", op, ts[0].shape, t.shape))
		}
	}
}

// --- reductions ----------------------------------------------------------

// Sum returns the sum of all elements (accumulated in float64).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.data {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// ArgMaxRow returns, for a 2-D [rows, cols] tensor, the argmax of each row.
func ArgMaxRow(t *Tensor) []int {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRow wants rank 2, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best, bi := float32(math.Inf(-1)), 0
		row := t.data[r*cols : (r+1)*cols]
		for c, v := range row {
			if v > best {
				best, bi = v, c
			}
		}
		out[r] = bi
	}
	return out
}
