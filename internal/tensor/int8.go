package tensor

import (
	"fmt"
	"sync"
)

// Post-training-quantization kernels: symmetric int8 with zero-point 0.
// Activations are quantized per tensor (q = clamp(round(x/s), -127, 127)),
// weights per output channel, and the int8 x int8 GEMM accumulates exactly
// in int32 with a fused requantize-to-float32 epilogue, so quantized ops
// read and write the same float32 registers as every other plan op.
//
// The GEMM reaches past the scalar-multiply wall with a SWAR layout: both
// operands are biased into the unsigned range [0, 254] (v' = v + 127), and
// three weight columns are packed into one uint64 at 21-bit lanes. One
// 64-bit multiply by a widened activation byte then produces three partial
// products at once, and because each lane product is at most 254*254 <
// 2^17, thirty-two of them accumulate in a lane without overflow. After
// every 32-step block the lanes are unpacked into int32 accumulators; at
// the end the bias identity
//
//	sum(a*b) = sum((a+127)*(b+127)) - 127*sum(a+127) - 127*(sum(b+127) - 127*k)
//
// recovers the exact signed dot product (rowOff is the activation-row term,
// colOff the precomputed weight-column term). Everything up to the final
// float32 multiply is integer and order-independent, so the optimized
// kernel agrees bit-exactly with NaiveQGEMMTransBInto — asserted by
// TestQGEMMParity and FuzzQuantizedGEMMParity — and results are identical
// across worker counts.
const (
	// QuantClip is the symmetric int8 clipping bound. The range is
	// [-127, 127] (not -128) so negation stays in range and the biased
	// domain [0, 254] fits lane arithmetic below.
	QuantClip = 127
	// quantBias shifts signed int8 values into the unsigned SWAR domain.
	quantBias = 127
	// QuantPadByte is the biased encoding of zero: the value quantized
	// activations are padded with.
	QuantPadByte = 127
	// qgemmLaneShift is the bit width of one packed-weight lane; three
	// lanes fill 63 of a uint64's 64 bits.
	qgemmLaneShift = 21
	qgemmLaneMask  = 1<<qgemmLaneShift - 1
	// QGEMMBlock is the k-step accumulation block: the largest power of
	// two with QGEMMBlock * 254 * 254 < 2^21, so a lane cannot overflow
	// within a block. Quantized activation rows are padded to a multiple
	// of it.
	QGEMMBlock = 32
	// qgemmMaxK bounds the padded depth so the unpacked int32 lane
	// accumulators (at most KP * 254 * 254) cannot overflow.
	qgemmMaxK = 32768
)

// PadK rounds a GEMM depth up to the QGEMMBlock stride quantized
// activation rows are stored at.
func PadK(k int) int {
	return (k + QGEMMBlock - 1) / QGEMMBlock * QGEMMBlock
}

// QuantDepthOK reports whether a GEMM depth fits the int8 kernel's int32
// accumulation bound; deeper layers must stay float32.
func QuantDepthOK(k int) bool { return k > 0 && PadK(k) <= qgemmMaxK }

// arenaU8 recycles transient biased-uint8 buffers (quantized activations,
// quantized im2col columns) the way the float32 arena recycles GEMM
// scratch.
var arenaU8 = sync.Pool{New: func() any { return new([]uint8) }}

// GetBufU8 returns a uint8 buffer of length n from the quantized arena.
// Contents are unspecified; callers overwrite every element before
// reading. Release with PutBufU8.
func GetBufU8(n int) *[]uint8 {
	p := arenaU8.Get().(*[]uint8)
	if cap(*p) < n {
		*p = make([]uint8, n)
	} else {
		*p = (*p)[:n]
	}
	return p
}

// PutBufU8 returns a buffer to the quantized arena.
func PutBufU8(p *[]uint8) {
	if p == nil {
		return
	}
	arenaU8.Put(p)
}

// QuantScale returns the symmetric quantization scale for a tensor whose
// values span [-absMax, absMax]: one int8 step in real units. A zero or
// negative absMax yields scale 1 (everything quantizes to 0).
func QuantScale(absMax float32) float32 {
	if absMax <= 0 {
		return 1
	}
	return absMax / QuantClip
}

// quantizeOne maps one float32 value onto the symmetric int8 grid with
// round-half-away-from-zero and saturation.
func quantizeOne(v, invScale float32) int8 {
	r := v * invScale
	var q int32
	if r >= 0 {
		q = int32(r + 0.5)
	} else {
		q = int32(r - 0.5)
	}
	if q > QuantClip {
		q = QuantClip
	} else if q < -QuantClip {
		q = -QuantClip
	}
	return int8(q)
}

// quantU8Job carries QuantizeU8Into's parallel-body state through the pool.
type quantU8Job struct {
	src  []float32
	dst  []uint8
	inv  float32
	body func(lo, hi int)
}

var quantU8Jobs = sync.Pool{New: func() any {
	jb := &quantU8Job{}
	jb.body = jb.run
	return jb
}}

func (jb *quantU8Job) run(lo, hi int) {
	src, dst, inv := jb.src, jb.dst, jb.inv
	for i := lo; i < hi; i++ {
		dst[i] = uint8(int32(quantizeOne(src[i], inv)) + quantBias)
	}
}

// QuantizeU8Into quantizes src onto the symmetric int8 grid with step
// scale and stores the biased encoding: dst[i] = clamp(round(src[i]/scale),
// -127, 127) + 127, in [0, 254]. len(dst) must equal len(src).
func QuantizeU8Into(dst []uint8, src []float32, scale float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: QuantizeU8Into length mismatch %d vs %d", len(dst), len(src)))
	}
	if scale == 0 {
		scale = 1
	}
	jb := quantU8Jobs.Get().(*quantU8Job)
	jb.src, jb.dst, jb.inv = src, dst, 1/scale
	parallelFor(len(src), jb.body)
	jb.src, jb.dst = nil, nil
	quantU8Jobs.Put(jb)
}

// quantRowsJob carries QuantizeRowsU8Into's parallel-body state.
type quantRowsJob struct {
	src   []float32
	dst   []uint8
	k, kp int
	inv   float32
	body  func(lo, hi int)
}

var quantRowsJobs = sync.Pool{New: func() any {
	jb := &quantRowsJob{}
	jb.body = jb.run
	return jb
}}

func (jb *quantRowsJob) run(lo, hi int) {
	src, dst, k, kp, inv := jb.src, jb.dst, jb.k, jb.kp, jb.inv
	for i := lo; i < hi; i++ {
		srow := src[i*k : (i+1)*k]
		drow := dst[i*kp : (i+1)*kp]
		for j, v := range srow {
			drow[j] = uint8(int32(quantizeOne(v, inv)) + quantBias)
		}
		for j := k; j < kp; j++ {
			drow[j] = QuantPadByte
		}
	}
}

// QuantizeRowsU8Into quantizes a [rows, k] row-major float32 matrix into
// biased uint8 rows stored at stride kp (= PadK(k)), padding each row's
// tail with the biased zero. This is the activation layout QGEMMInto
// consumes for linear layers. dst must have length rows*kp.
func QuantizeRowsU8Into(dst []uint8, src []float32, rows, k, kp int, scale float32) {
	if len(src) != rows*k || len(dst) != rows*kp || kp < k {
		panic(fmt.Sprintf("tensor: QuantizeRowsU8Into src %d dst %d for [%d,%d] kp=%d", len(src), len(dst), rows, k, kp))
	}
	if scale == 0 {
		scale = 1
	}
	jb := quantRowsJobs.Get().(*quantRowsJob)
	jb.src, jb.dst, jb.k, jb.kp, jb.inv = src, dst, k, kp, 1/scale
	parallelFor(rows, jb.body)
	jb.src, jb.dst = nil, nil
	quantRowsJobs.Put(jb)
}

// QuantizeChannelsI8 quantizes a [rows, k] row-major float32 weight matrix
// symmetrically per row (per output channel), returning the int8 payload
// and one scale per row.
func QuantizeChannelsI8(w []float32, rows, k int) (q []int8, scales []float32) {
	if len(w) != rows*k {
		panic(fmt.Sprintf("tensor: QuantizeChannelsI8 got %d values for [%d,%d]", len(w), rows, k))
	}
	q = make([]int8, rows*k)
	scales = make([]float32, rows)
	for r := 0; r < rows; r++ {
		row := w[r*k : (r+1)*k]
		var m float32
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > m {
				m = v
			}
		}
		s := QuantScale(m)
		scales[r] = s
		inv := 1 / s
		qrow := q[r*k : (r+1)*k]
		for i, v := range row {
			qrow[i] = quantizeOne(v, inv)
		}
	}
	return q, scales
}

// QuantWeights is a weight matrix prepacked for QGEMMInto: rows (output
// channels) in groups of three across the 21-bit lanes of a uint64 stream,
// depth padded to KP and encoded in the biased domain, plus per-row
// correction terms and dequantization scales.
type QuantWeights struct {
	Rows, K, KP int
	Packed      []uint64  // [ceil(Rows/3) * KP], lane l of group g = row g*3+l
	ColOff      []int32   // [Rows]: 127 * (sum(b+127) - 127*KP)
	Scales      []float32 // [Rows]: per-row (per-output-channel) weight scale
}

// PackQuantWeights packs per-channel-quantized int8 weights (row-major
// [rows, k]) into the SWAR layout. scales is retained, not copied.
func PackQuantWeights(q []int8, rows, k int, scales []float32) *QuantWeights {
	if len(q) != rows*k || len(scales) != rows {
		panic(fmt.Sprintf("tensor: PackQuantWeights got %d values, %d scales for [%d,%d]", len(q), len(scales), rows, k))
	}
	kp := PadK(k)
	if kp > qgemmMaxK {
		panic(fmt.Sprintf("tensor: PackQuantWeights depth %d exceeds the %d int32-accumulation bound", kp, qgemmMaxK))
	}
	groups := (rows + 2) / 3
	qw := &QuantWeights{
		Rows: rows, K: k, KP: kp,
		Packed: make([]uint64, groups*kp),
		ColOff: make([]int32, rows),
		Scales: scales,
	}
	for j := 0; j < rows; j++ {
		var sum int32
		lane := uint(qgemmLaneShift * (j % 3))
		stream := qw.Packed[(j/3)*kp:][:kp]
		for p := 0; p < kp; p++ {
			bp := int32(quantBias)
			if p < k {
				bp = int32(q[j*k+p]) + quantBias
			}
			sum += bp
			stream[p] |= uint64(uint32(bp)) << lane
		}
		qw.ColOff[j] = quantBias * (sum - quantBias*int32(kp))
	}
	return qw
}

// qgemmJob carries QGEMMInto's parallel-body state through the pool.
type qgemmJob struct {
	a            []uint8
	w            *QuantWeights
	dd           []float32
	scales, bias []float32
	relu         bool
	tileM        int
	body         func(lo, hi int)
}

var qgemmJobs = sync.Pool{New: func() any {
	jb := &qgemmJob{}
	jb.body = jb.run
	return jb
}}

// The activation-row tile (QGemmParams.TileM, default 8): one pass over a
// weight group's packed stream is shared by this many rows. Wide layers
// pack megabytes of weights — far past cache — so per-row streaming makes
// the kernel memory-bound; tiling divides that weight traffic by the tile
// size, while the 32-step weight block a tile is working on stays L1-hot.
// The on-stack accumulators are sized for QGemmMaxTileM (params.go) so the
// tile is a runtime knob the autotuner can search.

func (jb *qgemmJob) run(lo, hi int) {
	w := jb.w
	kp, n := w.KP, w.Rows
	packed, colOff := w.Packed, w.ColOff
	scales, bias, relu := jb.scales, jb.bias, jb.relu
	tileM := jb.tileM
	groups := (n + 2) / 3
	var rowOff [QGemmMaxTileM]int32
	for i0 := lo; i0 < hi; i0 += tileM {
		tm := hi - i0
		if tm > tileM {
			tm = tileM
		}
		for r := 0; r < tm; r++ {
			arow := jb.a[(i0+r)*kp:][:kp]
			var sumA int32
			for _, av := range arow {
				sumA += int32(av)
			}
			rowOff[r] = quantBias * sumA
		}
		for g := 0; g < groups; g++ {
			pk := packed[g*kp:][:kp]
			var lanes [QGemmMaxTileM][3]int32
			for p0 := 0; p0 < kp; p0 += QGEMMBlock {
				q0 := (*[QGEMMBlock]uint64)(pk[p0:])
				for r := 0; r < tm; r++ {
					aa := (*[QGEMMBlock]uint8)(jb.a[(i0+r)*kp+p0:])
					var acc uint64
					for t := 0; t < QGEMMBlock; t += 4 {
						acc += uint64(aa[t])*q0[t] + uint64(aa[t+1])*q0[t+1] +
							uint64(aa[t+2])*q0[t+2] + uint64(aa[t+3])*q0[t+3]
					}
					lanes[r][0] += int32(acc & qgemmLaneMask)
					lanes[r][1] += int32((acc >> qgemmLaneShift) & qgemmLaneMask)
					lanes[r][2] += int32(acc >> (2 * qgemmLaneShift))
				}
			}
			for r := 0; r < tm; r++ {
				drow := jb.dd[(i0+r)*n : (i0+r+1)*n]
				qgemmEpilogue(drow, lanes[r][:], g*3, n, rowOff[r], colOff, scales, bias, relu)
			}
		}
	}
}

// qgemmEpilogue dequantizes unpacked lane accumulators for columns
// [j0, min(j0+len(lanes), n)) into drow.
func qgemmEpilogue(drow []float32, lanes []int32, j0, n int, rowOff int32, colOff []int32, scales, bias []float32, relu bool) {
	for t, l := range lanes {
		j := j0 + t
		if j >= n {
			break
		}
		v := float32(l-rowOff-colOff[j]) * scales[j]
		if bias != nil {
			v += bias[j]
		}
		if relu && v < 0 {
			v = 0
		}
		drow[j] = v
	}
}

// QGEMMInto computes the quantized GEMM dst = a @ wᵀ with a fused
// requantize epilogue. a holds m biased-uint8 activation rows at stride
// w.KP (tails padded with QuantPadByte, as produced by QuantizeRowsU8Into
// or Im2ColU8Into); w is a packed weight matrix; scales must fold the
// activation scale with the per-channel weight scale (sIn * w.Scales[j]);
// bias may be nil; relu clamps the epilogue. dst must be [m, w.Rows]
// float32. Accumulation is exact in int32, so output is bit-identical to
// NaiveQGEMMTransBInto on the unbiased operands.
func QGEMMInto(dst *Tensor, a []uint8, w *QuantWeights, m int, scales, bias []float32, relu bool) {
	QGEMMIntoP(dst, a, w, m, scales, bias, relu, DefaultQGemmParams())
}

// QGEMMIntoP is QGEMMInto with an explicit activation-row tile parameter.
// The tile only changes the work schedule — accumulation stays exact in
// int32 — so output is bit-identical across tile sizes.
func QGEMMIntoP(dst *Tensor, a []uint8, w *QuantWeights, m int, scales, bias []float32, relu bool, qp QGemmParams) {
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != w.Rows {
		panic(fmt.Sprintf("tensor: QGEMMInto dst %v, want [%d %d]", dst.shape, m, w.Rows))
	}
	if len(a) != m*w.KP || len(scales) != w.Rows || (bias != nil && len(bias) != w.Rows) {
		panic(fmt.Sprintf("tensor: QGEMMInto a=%d scales=%d bias=%d for m=%d kp=%d rows=%d", len(a), len(scales), len(bias), m, w.KP, w.Rows))
	}
	jb := qgemmJobs.Get().(*qgemmJob)
	jb.a, jb.w, jb.dd, jb.scales, jb.bias, jb.relu = a, w, dst.data, scales, bias, relu
	jb.tileM = qp.norm()
	parallelFor(m, jb.body)
	jb.a, jb.w, jb.dd, jb.scales, jb.bias = nil, nil, nil, nil, nil
	qgemmJobs.Put(jb)
}

// im2colU8Job carries Im2ColU8Into's parallel-body state through the pool.
type im2colU8Job struct {
	xd, cd                                   []uint8
	c, h, w, oh, ow, kh, kw, stride, pad, kp int
	body                                     func(lo, hi int)
}

var im2colU8Jobs = sync.Pool{New: func() any {
	jb := &im2colU8Job{}
	jb.body = jb.run
	return jb
}}

func (jb *im2colU8Job) run(lo, hi int) {
	xd, cd := jb.xd, jb.cd
	c, h, w, oh, ow := jb.c, jb.h, jb.w, jb.oh, jb.ow
	kh, kw, stride, pad, kp := jb.kh, jb.kw, jb.stride, jb.pad, jb.kp
	for noy := lo; noy < hi; noy++ {
		ni, oy := noy/oh, noy%oh
		base := ni * c * h * w
		for ox := 0; ox < ow; ox++ {
			dst := cd[(noy*ow+ox)*kp:][:kp]
			di := 0
			for ci := 0; ci < c; ci++ {
				cb := base + ci*h*w
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						for kx := 0; kx < kw; kx++ {
							dst[di] = QuantPadByte
							di++
						}
						continue
					}
					rb := cb + iy*w
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							dst[di] = QuantPadByte
						} else {
							dst[di] = xd[rb+ix]
						}
						di++
					}
				}
			}
			for ; di < kp; di++ {
				dst[di] = QuantPadByte
			}
		}
	}
}

// Im2ColU8Into unfolds a quantized NCHW input (flat biased uint8, logical
// shape [n,c,h,w]) into columns [n*oh*ow, c*kh*kw] stored at row stride
// kp = PadK(c*kh*kw), the quantized counterpart of Im2ColInto. Spatial
// padding and the row tail write the biased zero, which is exact under
// symmetric quantization. Moving bytes instead of float32s cuts the
// unfold's memory traffic 4x — for a 3x3 stride-1 convolution the columns
// buffer rewrites each input element nine times, so this is a meaningful
// share of the int8 path's win.
func Im2ColU8Into(cols, x []uint8, n, c, h, w, kh, kw, stride, pad int) {
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	kp := PadK(c * kh * kw)
	if len(x) != n*c*h*w || len(cols) != n*oh*ow*kp {
		panic(fmt.Sprintf("tensor: Im2ColU8Into x len %d cols len %d for [%d,%d,%d,%d] k=%dx%d kp=%d", len(x), len(cols), n, c, h, w, kh, kw, kp))
	}
	jb := im2colU8Jobs.Get().(*im2colU8Job)
	jb.xd, jb.cd = x, cols
	jb.c, jb.h, jb.w, jb.oh, jb.ow = c, h, w, oh, ow
	jb.kh, jb.kw, jb.stride, jb.pad, jb.kp = kh, kw, stride, pad, kp
	parallelFor(n*oh, jb.body)
	jb.xd, jb.cd = nil, nil
	im2colU8Jobs.Put(jb)
}

// NaiveQGEMMTransBInto is the reference quantized GEMM: signed int8
// operands (a [m,k], b [n,k] row-major), textbook loops, exact int32
// accumulation, same epilogue. The packed SWAR kernel must match it
// bit-exactly — integer accumulation is order-independent and the epilogue
// performs the identical float operations per element.
func NaiveQGEMMTransBInto(dst *Tensor, a, b []int8, m, k, n int, scales, bias []float32, relu bool) {
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: NaiveQGEMMTransBInto dst %v, want [%d %d]", dst.shape, m, n))
	}
	dd := dst.data
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for p := 0; p < k; p++ {
				s += int32(a[i*k+p]) * int32(b[j*k+p])
			}
			v := float32(s) * scales[j]
			if bias != nil {
				v += bias[j]
			}
			if relu && v < 0 {
				v = 0
			}
			dd[i*n+j] = v
		}
	}
}
