package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the persistent worker pool behind every parallel
// kernel in the package. The previous design spawned fresh goroutines on
// each parallelFor call, which showed up as scheduler and stack-allocation
// overhead during simulated-annealing search where kernels fire millions of
// times. The pool starts GOMAXPROCS long-lived workers on first use and
// feeds them chunk tasks over a channel.
//
// Determinism note: a task computes a half-open index range [lo,hi) of
// independent outputs, so the floating-point result of a kernel is
// identical no matter how chunks are distributed over workers (or run
// inline). The ParallelOptimizer determinism test in internal/core relies
// on this.

// join tracks the outstanding tasks of one ParallelFor/ParallelTasks call.
// Joins are recycled through a sync.Pool so the steady-state execution-plan
// path (plan.Instance.Execute) performs zero allocations per forward; done
// therefore carries a single completion token — sent by whichever goroutine
// finishes the last task, consumed exactly once by the waiter — instead of
// being closed (a closed channel could not be reused).
type join struct {
	remaining atomic.Int32
	done      chan struct{}
}

var joinPool = sync.Pool{New: func() any {
	return &join{done: make(chan struct{}, 1)}
}}

// newJoin leases a join expecting n task completions.
func newJoin(n int32) *join {
	j := joinPool.Get().(*join)
	j.remaining.Store(n)
	return j
}

func (j *join) finish() {
	if j.remaining.Add(-1) == 0 {
		j.done <- struct{}{}
	}
}

// poolTask is one unit of pool work: either a [lo,hi) chunk of a
// ParallelFor body, or (when idxBody is set) a single ParallelTasks index.
type poolTask struct {
	lo, hi  int
	body    func(lo, hi int)
	idxBody func(i int)
	join    *join
}

func (t *poolTask) run() {
	if t.idxBody != nil {
		t.idxBody(t.lo)
	} else {
		t.body(t.lo, t.hi)
	}
}

var (
	poolOnce  sync.Once
	poolTasks chan poolTask
	// poolWorkers is the number of persistent workers, fixed at first use.
	poolWorkers int
)

// startPool launches the persistent workers on first use. Workers never
// terminate; they are cheap when idle (blocked on a channel receive).
func startPool() {
	poolOnce.Do(func() {
		poolWorkers = runtime.GOMAXPROCS(0)
		poolTasks = make(chan poolTask, 4*poolWorkers)
		for i := 0; i < poolWorkers; i++ {
			go func() {
				for t := range poolTasks {
					t.run()
					t.join.finish()
				}
			}()
		}
	})
}

// Workers returns the parallel width of the kernel worker pool.
func Workers() int {
	startPool()
	return poolWorkers
}

// waitJoin blocks until j's completion token arrives, then recycles j.
// While waiting it executes whatever is queued — its own tasks, or another
// caller's. A nested parallel call whose tasks were stolen by workers that
// are themselves blocked here still completes, because those workers are
// draining the queue too; every waiter makes global progress, which is what
// rules out deadlock under nesting.
func waitJoin(j *join) {
	for {
		select {
		case <-j.done:
			joinPool.Put(j)
			return
		default:
		}
		select {
		case <-j.done:
			joinPool.Put(j)
			return
		case t := <-poolTasks:
			t.run()
			t.join.finish()
		}
	}
}

// ParallelFor splits [0,n) into chunks and runs body on each concurrently
// using the shared worker pool. body must treat its [lo,hi) range as
// exclusive: ranges never overlap, and every index in [0,n) is covered
// exactly once. Small n runs inline with no synchronization.
//
// The pool is safe to enter from any number of goroutines at once, and
// bodies may themselves call ParallelFor (the fused-engine branch pattern).
// Chunks are enqueued without blocking — a full queue falls back to inline
// execution — and a caller waiting for its chunks helps drain the shared
// queue instead of parking (see waitJoin).
func ParallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	startPool()
	w := poolWorkers
	if w > n {
		w = n
	}
	if w <= 1 || n < 64 {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	nsub := (n - 1) / chunk // chunks beyond the first, which runs on the caller
	if nsub == 0 {
		body(0, n)
		return
	}
	j := newJoin(int32(nsub))
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case poolTasks <- poolTask{lo: lo, hi: hi, body: body, join: j}:
		default:
			// Queue full (heavy concurrent load): execute inline.
			body(lo, hi)
			j.finish()
		}
	}
	// Run the first chunk inline so the submitting goroutine contributes
	// work instead of just blocking.
	body(0, chunk)
	waitJoin(j)
}

// ParallelTasks runs body(i) for each i in [0,n) concurrently, dispatching
// every index as its own pool task. Unlike ParallelFor — whose n<64 inline
// cutoff is tuned for per-element loops — ParallelTasks parallelizes even
// tiny n, because each index is a coarse work item: the execution plan's
// wave schedule runs two or three whole fused ops per call. Index 0 runs on
// the caller; the wait helps drain the shared queue like ParallelFor.
func ParallelTasks(n int, body func(i int)) {
	if n <= 0 {
		return
	}
	startPool()
	if n == 1 || poolWorkers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	j := newJoin(int32(n - 1))
	for i := 1; i < n; i++ {
		select {
		case poolTasks <- poolTask{lo: i, idxBody: body, join: j}:
		default:
			body(i)
			j.finish()
		}
	}
	body(0)
	waitJoin(j)
}

// parallelFor is the package-internal spelling used by the kernels.
func parallelFor(n int, body func(lo, hi int)) { ParallelFor(n, body) }
