package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the persistent worker pool behind every parallel
// kernel in the package. The previous design spawned fresh goroutines on
// each parallelFor call, which showed up as scheduler and stack-allocation
// overhead during simulated-annealing search where kernels fire millions of
// times. The pool starts GOMAXPROCS long-lived workers on first use and
// feeds them chunk tasks over a channel.
//
// Determinism note: a task computes a half-open index range [lo,hi) of
// independent outputs, so the floating-point result of a kernel is
// identical no matter how chunks are distributed over workers (or run
// inline). The ParallelOptimizer determinism test in internal/core relies
// on this.

// poolTask is one chunk of a parallelFor body.
type poolTask struct {
	lo, hi int
	body   func(lo, hi int)
	wg     *sync.WaitGroup
}

var (
	poolOnce  sync.Once
	poolTasks chan poolTask
	// poolWorkers is the number of persistent workers, fixed at first use.
	poolWorkers int
)

// startPool launches the persistent workers. Workers never terminate; they
// are cheap when idle (blocked on a channel receive).
func startPool() {
	poolWorkers = runtime.GOMAXPROCS(0)
	poolTasks = make(chan poolTask, 4*poolWorkers)
	for i := 0; i < poolWorkers; i++ {
		go func() {
			for t := range poolTasks {
				t.body(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}

// Workers returns the parallel width of the kernel worker pool.
func Workers() int {
	poolOnce.Do(startPool)
	return poolWorkers
}

// inFlight counts parallelFor invocations currently executing, across all
// goroutines. It lets nested calls (e.g. a matmul inside a fused-engine
// branch that is itself a pool task) degrade to inline execution instead of
// deadlocking on a saturated task queue.
var inFlight atomic.Int32

// ParallelFor splits [0,n) into chunks and runs body on each concurrently
// using the shared worker pool. body must treat its [lo,hi) range as
// exclusive: ranges never overlap, and every index in [0,n) is covered
// exactly once. Small n runs inline with no synchronization.
func ParallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	poolOnce.Do(startPool)
	w := poolWorkers
	if w > n {
		w = n
	}
	if w <= 1 || n < 64 {
		body(0, n)
		return
	}
	if inFlight.Add(1) > 1 {
		// Nested parallelism: the pool is already busy on behalf of an
		// enclosing ParallelFor (possibly on this very goroutine). Run
		// inline rather than queueing tasks that could wait on us.
		body(0, n)
		inFlight.Add(-1)
		return
	}
	defer inFlight.Add(-1)
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	// Submit all chunks but the first; run the first inline on the caller so
	// the submitting goroutine contributes work instead of just blocking.
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		select {
		case poolTasks <- poolTask{lo: lo, hi: hi, body: body, wg: &wg}:
		default:
			// Queue full (heavy concurrent load): execute inline.
			body(lo, hi)
			wg.Done()
		}
	}
	first := chunk
	if first > n {
		first = n
	}
	body(0, first)
	wg.Wait()
}

// parallelFor is the package-internal spelling used by the kernels.
func parallelFor(n int, body func(lo, hi int)) { ParallelFor(n, body) }
