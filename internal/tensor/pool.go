package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the persistent worker pool behind every parallel
// kernel in the package. The previous design spawned fresh goroutines on
// each parallelFor call, which showed up as scheduler and stack-allocation
// overhead during simulated-annealing search where kernels fire millions of
// times. The pool starts GOMAXPROCS long-lived workers on first use and
// feeds them chunk tasks over a channel.
//
// Determinism note: a task computes a half-open index range [lo,hi) of
// independent outputs, so the floating-point result of a kernel is
// identical no matter how chunks are distributed over workers (or run
// inline). The ParallelOptimizer determinism test in internal/core relies
// on this.

// join tracks the outstanding chunks of one ParallelFor call. done is
// closed by whichever goroutine finishes the last chunk.
type join struct {
	remaining atomic.Int32
	done      chan struct{}
}

func (j *join) finish() {
	if j.remaining.Add(-1) == 0 {
		close(j.done)
	}
}

// poolTask is one chunk of a parallelFor body.
type poolTask struct {
	lo, hi int
	body   func(lo, hi int)
	join   *join
}

var (
	poolOnce  sync.Once
	poolTasks chan poolTask
	// poolWorkers is the number of persistent workers, fixed at first use.
	poolWorkers int
)

// startPool launches the persistent workers on first use. Workers never
// terminate; they are cheap when idle (blocked on a channel receive).
func startPool() {
	poolOnce.Do(func() {
		poolWorkers = runtime.GOMAXPROCS(0)
		poolTasks = make(chan poolTask, 4*poolWorkers)
		for i := 0; i < poolWorkers; i++ {
			go func() {
				for t := range poolTasks {
					t.body(t.lo, t.hi)
					t.join.finish()
				}
			}()
		}
	})
}

// Workers returns the parallel width of the kernel worker pool.
func Workers() int {
	startPool()
	return poolWorkers
}

// ParallelFor splits [0,n) into chunks and runs body on each concurrently
// using the shared worker pool. body must treat its [lo,hi) range as
// exclusive: ranges never overlap, and every index in [0,n) is covered
// exactly once. Small n runs inline with no synchronization.
//
// The pool is safe to enter from any number of goroutines at once, and
// bodies may themselves call ParallelFor (the fused-engine branch pattern).
// Chunks are enqueued without blocking — a full queue falls back to inline
// execution — and a caller waiting for its chunks helps drain the shared
// queue instead of parking. Every waiter therefore makes global progress,
// which is what rules out deadlock under nesting, and independent top-level
// callers keep sharing the pool rather than one of them degrading to
// single-threaded inline execution.
func ParallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	startPool()
	w := poolWorkers
	if w > n {
		w = n
	}
	if w <= 1 || n < 64 {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	nsub := (n - 1) / chunk // chunks beyond the first, which runs on the caller
	if nsub == 0 {
		body(0, n)
		return
	}
	j := &join{done: make(chan struct{})}
	j.remaining.Store(int32(nsub))
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		select {
		case poolTasks <- poolTask{lo: lo, hi: hi, body: body, join: j}:
		default:
			// Queue full (heavy concurrent load): execute inline.
			body(lo, hi)
			j.finish()
		}
	}
	// Run the first chunk inline so the submitting goroutine contributes
	// work instead of just blocking.
	body(0, chunk)
	// Helping wait: until our own chunks are done, execute whatever is
	// queued — our chunks, or another caller's. A nested ParallelFor whose
	// chunks were stolen by workers that are themselves blocked here still
	// completes, because those workers are draining the queue too.
	for {
		select {
		case <-j.done:
			return
		default:
		}
		select {
		case <-j.done:
			return
		case t := <-poolTasks:
			t.body(t.lo, t.hi)
			t.join.finish()
		}
	}
}

// parallelFor is the package-internal spelling used by the kernels.
func parallelFor(n int, body func(lo, hi int)) { ParallelFor(n, body) }
