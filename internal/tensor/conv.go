package tensor

import (
	"fmt"
	"sync"
)

// Hot-path kernels in this file hand their parallel bodies to the worker
// pool through recycled "job" structs: the captured state lives in struct
// fields and the body is a method value created once when the sync.Pool
// constructs the job. A plain closure would heap-allocate its capture on
// every call — visible GC churn under SA search, and a violation of the
// execution plan's zero-allocations-per-forward contract
// (internal/plan.Instance.Execute).

// ConvOut returns the output spatial size of a convolution/pool with the
// given input size, kernel, stride, and padding.
func ConvOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Im2Col unfolds x [N,C,H,W] into columns [N*OH*OW, C*KH*KW] so a
// convolution becomes a matmul against a [C*KH*KW, OutC] weight matrix.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	cols := New(n*oh*ow, c*kh*kw)
	Im2ColInto(cols, x, kh, kw, stride, pad)
	return cols
}

// im2colJob carries Im2ColInto's parallel-body state through the pool.
type im2colJob struct {
	xd, cd                                       []float32
	c, h, w, oh, ow, kh, kw, stride, pad, rowLen int
	body                                         func(lo, hi int)
}

var im2colJobs = sync.Pool{New: func() any {
	jb := &im2colJob{}
	jb.body = jb.run
	return jb
}}

func (jb *im2colJob) run(lo, hi int) {
	xd, cd := jb.xd, jb.cd
	c, h, w, oh, ow := jb.c, jb.h, jb.w, jb.oh, jb.ow
	kh, kw, stride, pad, rowLen := jb.kh, jb.kw, jb.stride, jb.pad, jb.rowLen
	for noy := lo; noy < hi; noy++ {
		ni, oy := noy/oh, noy%oh
		base := ni * c * h * w
		for ox := 0; ox < ow; ox++ {
			dst := cd[(noy*ow+ox)*rowLen : (noy*ow+ox+1)*rowLen]
			di := 0
			for ci := 0; ci < c; ci++ {
				cb := base + ci*h*w
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						for kx := 0; kx < kw; kx++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rb := cb + iy*w
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							dst[di] = 0
						} else {
							dst[di] = xd[rb+ix]
						}
						di++
					}
				}
			}
		}
	}
}

// Im2ColInto is Im2Col writing into a caller-provided [N*OH*OW, C*KH*KW]
// tensor, letting hot paths reuse buffers.
func Im2ColInto(cols, x *Tensor, kh, kw, stride, pad int) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col wants NCHW, got %v", x.shape))
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	if cols.shape[0] != n*oh*ow || cols.shape[1] != c*kh*kw {
		panic(fmt.Sprintf("tensor: Im2ColInto dst %v, want [%d %d]", cols.shape, n*oh*ow, c*kh*kw))
	}
	jb := im2colJobs.Get().(*im2colJob)
	jb.xd, jb.cd = x.data, cols.data
	jb.c, jb.h, jb.w, jb.oh, jb.ow = c, h, w, oh, ow
	jb.kh, jb.kw, jb.stride, jb.pad, jb.rowLen = kh, kw, stride, pad, c*kh*kw
	parallelFor(n*oh, jb.body)
	jb.xd, jb.cd = nil, nil
	im2colJobs.Put(jb)
}

// Col2Im folds columns [N*OH*OW, C*KH*KW] back into an NCHW tensor of shape
// [N,C,H,W], accumulating overlapping contributions. It is the adjoint of
// Im2Col and is used for convolution input gradients.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	rowLen := c * kh * kw
	if cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2Im shape mismatch cols=%v for out [%d,%d,%d,%d]", cols.shape, n, c, h, w))
	}
	out := New(n, c, h, w)
	xd, cd := out.data, cols.data
	// Parallelize over images: each image's region of out is disjoint.
	parallelFor(n, func(lo, hi int) {
		for ni := lo; ni < hi; ni++ {
			base := ni * c * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					src := cd[((ni*oh+oy)*ow+ox)*rowLen:]
					si := 0
					for ci := 0; ci < c; ci++ {
						cb := base + ci*h*w
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								si += kw
								continue
							}
							rb := cb + iy*w
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride + kx - pad
								if ix >= 0 && ix < w {
									xd[rb+ix] += src[si]
								}
								si++
							}
						}
					}
				}
			}
		}
	})
	return out
}

// MaxPool applies 2-D max pooling to x [N,C,H,W] and returns the pooled
// tensor plus the flat argmax index (into x.Data()) of each output element,
// which the backward pass uses to route gradients.
func MaxPool(x *Tensor, k, stride int) (*Tensor, []int32) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	out := New(n, c, oh, ow)
	arg := make([]int32, out.Size())
	xd, od := x.data, out.data
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			base := nc * h * w
			obase := nc * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bi := base + oy*stride*w + ox*stride
					best, bidx := xd[bi], bi
					for ky := 0; ky < k; ky++ {
						row := base + (oy*stride+ky)*w + ox*stride
						for kx := 0; kx < k; kx++ {
							if v := xd[row+kx]; v > best {
								best, bidx = v, row+kx
							}
						}
					}
					oi := obase + oy*ow + ox
					od[oi] = best
					arg[oi] = int32(bidx)
				}
			}
		}
	})
	return out, arg
}

// MaxPoolBackward scatters gradOut back to input positions recorded in arg.
func MaxPoolBackward(gradOut *Tensor, arg []int32, inputShape []int) *Tensor {
	gi := New(inputShape...)
	gd, god := gi.data, gradOut.data
	for i, a := range arg {
		gd[a] += god[i]
	}
	return gi
}

// maxPoolJob carries MaxPoolEvalInto's parallel-body state through the pool.
type maxPoolJob struct {
	xd, od              []float32
	h, w, oh, ow, k, st int
	body                func(lo, hi int)
}

var maxPoolJobs = sync.Pool{New: func() any {
	jb := &maxPoolJob{}
	jb.body = jb.run
	return jb
}}

func (jb *maxPoolJob) run(lo, hi int) {
	xd, od := jb.xd, jb.od
	h, w, oh, ow, k, stride := jb.h, jb.w, jb.oh, jb.ow, jb.k, jb.st
	for nc := lo; nc < hi; nc++ {
		base := nc * h * w
		obase := nc * oh * ow
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := xd[base+oy*stride*w+ox*stride]
				for ky := 0; ky < k; ky++ {
					row := base + (oy*stride+ky)*w + ox*stride
					for kx := 0; kx < k; kx++ {
						if v := xd[row+kx]; v > best {
							best = v
						}
					}
				}
				od[obase+oy*ow+ox] = best
			}
		}
	}
}

// MaxPoolEvalInto is inference-only max pooling of x [N,C,H,W] into a
// caller-provided [N,C,OH,OW] tensor: no argmax bookkeeping, no
// allocations. It is the execution-plan counterpart of MaxPool.
func MaxPoolEvalInto(dst, x *Tensor, k, stride int) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, ow := ConvOut(h, k, stride, 0), ConvOut(w, k, stride, 0)
	if dst.shape[0] != n || dst.shape[1] != c || dst.shape[2] != oh || dst.shape[3] != ow {
		panic(fmt.Sprintf("tensor: MaxPoolEvalInto dst %v, want [%d %d %d %d]", dst.shape, n, c, oh, ow))
	}
	jb := maxPoolJobs.Get().(*maxPoolJob)
	jb.xd, jb.od = x.data, dst.data
	jb.h, jb.w, jb.oh, jb.ow, jb.k, jb.st = h, w, oh, ow, k, stride
	parallelFor(n*c, jb.body)
	jb.xd, jb.od = nil, nil
	maxPoolJobs.Put(jb)
}

// AvgPoolGlobal averages x [N,C,H,W] over the spatial dims, returning [N,C].
func AvgPoolGlobal(x *Tensor) *Tensor {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n, c)
	inv := 1 / float32(h*w)
	for nc := 0; nc < n*c; nc++ {
		var s float32
		for _, v := range x.data[nc*h*w : (nc+1)*h*w] {
			s += v
		}
		out.data[nc] = s * inv
	}
	return out
}

// AvgPoolGlobalInto averages x [N,C,H,W] over the spatial dims into a
// caller-provided [N,C] tensor without allocating.
func AvgPoolGlobalInto(dst, x *Tensor) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if dst.shape[0] != n || dst.shape[1] != c {
		panic(fmt.Sprintf("tensor: AvgPoolGlobalInto dst %v, want [%d %d]", dst.shape, n, c))
	}
	inv := 1 / float32(h*w)
	for nc := 0; nc < n*c; nc++ {
		var s float32
		for _, v := range x.data[nc*h*w : (nc+1)*h*w] {
			s += v
		}
		dst.data[nc] = s * inv
	}
}

// AvgPoolGlobalBackward spreads gradOut [N,C] uniformly over [N,C,H,W].
func AvgPoolGlobalBackward(gradOut *Tensor, h, w int) *Tensor {
	n, c := gradOut.shape[0], gradOut.shape[1]
	gi := New(n, c, h, w)
	inv := 1 / float32(h*w)
	for nc := 0; nc < n*c; nc++ {
		g := gradOut.data[nc] * inv
		row := gi.data[nc*h*w : (nc+1)*h*w]
		for i := range row {
			row[i] = g
		}
	}
	return gi
}

// interpJob carries InterpolateInto's parallel-body state through the pool.
type interpJob struct {
	xd, od           []float32
	h, w, outH, outW int
	body             func(lo, hi int)
}

var interpJobs = sync.Pool{New: func() any {
	jb := &interpJob{}
	jb.body = jb.run
	return jb
}}

func (jb *interpJob) run(lo, hi int) {
	xd, od := jb.xd, jb.od
	h, w, outH, outW := jb.h, jb.w, jb.outH, jb.outW
	sy := float32(h) / float32(outH)
	sx := float32(w) / float32(outW)
	for nc := lo; nc < hi; nc++ {
		base := nc * h * w
		obase := nc * outH * outW
		for oy := 0; oy < outH; oy++ {
			fy := (float32(oy)+0.5)*sy - 0.5
			y0 := int(fy)
			if fy < 0 {
				fy, y0 = 0, 0
			}
			y1 := y0 + 1
			if y1 >= h {
				y1 = h - 1
			}
			wy := fy - float32(y0)
			for ox := 0; ox < outW; ox++ {
				fx := (float32(ox)+0.5)*sx - 0.5
				x0 := int(fx)
				if fx < 0 {
					fx, x0 = 0, 0
				}
				x1 := x0 + 1
				if x1 >= w {
					x1 = w - 1
				}
				wx := fx - float32(x0)
				v00 := xd[base+y0*w+x0]
				v01 := xd[base+y0*w+x1]
				v10 := xd[base+y1*w+x0]
				v11 := xd[base+y1*w+x1]
				top := v00 + (v01-v00)*wx
				bot := v10 + (v11-v10)*wx
				od[obase+oy*outW+ox] = top + (bot-top)*wy
			}
		}
	}
}

// Interpolate resizes x [N,C,H,W] to [N,C,outH,outW] with bilinear
// interpolation (align_corners=false convention).
func Interpolate(x *Tensor, outH, outW int) *Tensor {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if outH == h && outW == w {
		return x.Clone()
	}
	out := New(n, c, outH, outW)
	InterpolateInto(out, x)
	return out
}

// InterpolateInto bilinearly resizes x [N,C,H,W] into a caller-provided
// [N,C,outH,outW] tensor without allocating. Identical spatial sizes
// degrade to a copy.
func InterpolateInto(dst, x *Tensor) {
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	outH, outW := dst.shape[2], dst.shape[3]
	if dst.shape[0] != n || dst.shape[1] != c {
		panic(fmt.Sprintf("tensor: InterpolateInto dst %v for input %v", dst.shape, x.shape))
	}
	if outH == h && outW == w {
		copy(dst.data, x.data)
		return
	}
	jb := interpJobs.Get().(*interpJob)
	jb.xd, jb.od = x.data, dst.data
	jb.h, jb.w, jb.outH, jb.outW = h, w, outH, outW
	parallelFor(n*c, jb.body)
	jb.xd, jb.od = nil, nil
	interpJobs.Put(jb)
}

// InterpolateBackward computes the adjoint of Interpolate: it scatters
// gradOut [N,C,outH,outW] back onto the input grid [N,C,H,W].
func InterpolateBackward(gradOut *Tensor, h, w int) *Tensor {
	n, c, outH, outW := gradOut.shape[0], gradOut.shape[1], gradOut.shape[2], gradOut.shape[3]
	gi := New(n, c, h, w)
	if outH == h && outW == w {
		copy(gi.data, gradOut.data)
		return gi
	}
	sy := float32(h) / float32(outH)
	sx := float32(w) / float32(outW)
	gd, god := gi.data, gradOut.data
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			base := nc * h * w
			obase := nc * outH * outW
			for oy := 0; oy < outH; oy++ {
				fy := (float32(oy)+0.5)*sy - 0.5
				y0 := int(fy)
				if fy < 0 {
					fy, y0 = 0, 0
				}
				y1 := y0 + 1
				if y1 >= h {
					y1 = h - 1
				}
				wy := fy - float32(y0)
				for ox := 0; ox < outW; ox++ {
					fx := (float32(ox)+0.5)*sx - 0.5
					x0 := int(fx)
					if fx < 0 {
						fx, x0 = 0, 0
					}
					x1 := x0 + 1
					if x1 >= w {
						x1 = w - 1
					}
					wx := fx - float32(x0)
					g := god[obase+oy*outW+ox]
					gd[base+y0*w+x0] += g * (1 - wy) * (1 - wx)
					gd[base+y0*w+x1] += g * (1 - wy) * wx
					gd[base+y1*w+x0] += g * wy * (1 - wx)
					gd[base+y1*w+x1] += g * wy * wx
				}
			}
		}
	})
	return gi
}
