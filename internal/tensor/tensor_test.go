package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewShapeAndSize(t *testing.T) {
	cases := []struct {
		shape []int
		size  int
	}{
		{[]int{}, 1},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4}, 24},
		{[]int{1, 0, 5}, 0},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Size() != c.size {
			t.Errorf("New(%v).Size() = %d, want %d", c.shape, tt.Size(), c.size)
		}
		if tt.Rank() != len(c.shape) {
			t.Errorf("New(%v).Rank() = %d, want %d", c.shape, tt.Rank(), len(c.shape))
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with negative dim did not panic")
		}
	}()
	New(2, -1)
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with bad length did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetOffsets(t *testing.T) {
	tt := New(2, 3, 4)
	tt.Set(7, 1, 2, 3)
	if got := tt.At(1, 2, 3); got != 7 {
		t.Fatalf("At(1,2,3) = %v, want 7", got)
	}
	// Row-major layout: offset = ((1*3)+2)*4+3 = 23.
	if tt.Data()[23] != 7 {
		t.Fatalf("expected flat index 23 to hold 7, data=%v", tt.Data())
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	tt.At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	tt := New(2, 6)
	v := tt.Reshape(3, 4)
	v.Set(5, 0, 1)
	if tt.Data()[1] != 5 {
		t.Fatal("Reshape must share backing data")
	}
	inferred := tt.Reshape(4, -1)
	if inferred.Dim(1) != 3 {
		t.Fatalf("Reshape(4,-1) got dim %d, want 3", inferred.Dim(1))
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	tt := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	tt.Reshape(4, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := a.Clone()
	b.Data()[0] = 9
	if a.Data()[0] != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{4, 3, 2, 1}, 2, 2)
	sum := Add(a, b)
	for _, v := range sum.Data() {
		if v != 5 {
			t.Fatalf("Add result = %v, want all 5", sum.Data())
		}
	}
	diff := Sub(a, b)
	want := []float32{-3, -1, 1, 3}
	for i, v := range diff.Data() {
		if v != want[i] {
			t.Fatalf("Sub result = %v, want %v", diff.Data(), want)
		}
	}
	prod := New(2, 2)
	MulInto(prod, a, b)
	wantP := []float32{4, 6, 6, 4}
	for i, v := range prod.Data() {
		if v != wantP[i] {
			t.Fatalf("MulInto result = %v, want %v", prod.Data(), wantP)
		}
	}
	a.Scale(2)
	if a.At(1, 1) != 8 {
		t.Fatalf("Scale: got %v", a.Data())
	}
	a.AddScaled(0.5, b)
	if a.At(0, 0) != 4 {
		t.Fatalf("AddScaled: got %v", a.Data())
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{-1, 2, -3, 4}, 4)
	if got := a.Sum(); got != 2 {
		t.Fatalf("Sum = %v, want 2", got)
	}
	if got := a.Mean(); got != 0.5 {
		t.Fatalf("Mean = %v, want 0.5", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func TestArgMaxRow(t *testing.T) {
	a := FromSlice([]float32{0.1, 0.9, 0.5, 3, 2, 1}, 2, 3)
	got := ArgMaxRow(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRow = %v, want [1 0]", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched shapes did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// Transposed matmul variants must agree with explicit transposition.
func TestMatMulTransposeVariants(t *testing.T) {
	rng := NewRNG(11)
	a := New(5, 7)
	b := New(5, 4)
	rng.FillNormal(a, 0, 1)
	rng.FillNormal(b, 0, 1)

	// aᵀ @ b via MatMulTransAInto vs Transpose2D + MatMul.
	got := New(7, 4)
	MatMulTransAInto(got, a, b)
	want := MatMul(Transpose2D(a), b)
	for i := range got.Data() {
		if !almostEq(float64(got.Data()[i]), float64(want.Data()[i]), 1e-4) {
			t.Fatalf("MatMulTransAInto mismatch at %d: %v vs %v", i, got.Data()[i], want.Data()[i])
		}
	}

	// a @ bᵀ via MatMulTransBInto: b=[5,4] @ c=[6,4]ᵀ -> [5,6].
	c := New(6, 4)
	rng.FillNormal(c, 0, 1)
	got2 := New(5, 6)
	MatMulTransBInto(got2, b, c)
	want2 := MatMul(b, Transpose2D(c))
	for i := range got2.Data() {
		if !almostEq(float64(got2.Data()[i]), float64(want2.Data()[i]), 1e-4) {
			t.Fatalf("MatMulTransBInto mismatch at %d", i)
		}
	}
}

// Property: matmul distributes over addition: (a+b) @ c == a@c + b@c.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b, c := New(m, k), New(m, k), New(k, n)
		rng.FillUniform(a, -1, 1)
		rng.FillUniform(b, -1, 1)
		rng.FillUniform(c, -1, 1)
		left := MatMul(Add(a, b), c)
		right := Add(MatMul(a, c), MatMul(b, c))
		for i := range left.Data() {
			if !almostEq(float64(left.Data()[i]), float64(right.Data()[i]), 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := New(m, n)
		rng.FillUniform(a, -2, 2)
		b := Transpose2D(Transpose2D(a))
		for i := range a.Data() {
			if a.Data()[i] != b.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConvOut(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{32, 3, 1, 1, 32},
		{32, 2, 2, 0, 16},
		{7, 3, 2, 1, 4},
		{5, 5, 1, 0, 1},
	}
	for _, c := range cases {
		if got := ConvOut(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOut(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

// Im2Col on a 1x1 kernel with stride 1 is just a layout change.
func TestIm2ColIdentityKernel(t *testing.T) {
	x := New(1, 2, 2, 2)
	for i := range x.Data() {
		x.Data()[i] = float32(i)
	}
	cols := Im2Col(x, 1, 1, 1, 0)
	if cols.Dim(0) != 4 || cols.Dim(1) != 2 {
		t.Fatalf("cols shape = %v", cols.Shape())
	}
	// Column row (y,x) holds [c0(y,x), c1(y,x)].
	if cols.At(0, 0) != 0 || cols.At(0, 1) != 4 {
		t.Fatalf("cols = %v", cols.Data())
	}
	if cols.At(3, 0) != 3 || cols.At(3, 1) != 7 {
		t.Fatalf("cols = %v", cols.Data())
	}
}

// Reference convolution computed naively, compared against im2col+matmul.
func TestIm2ColMatchesNaiveConv(t *testing.T) {
	rng := NewRNG(42)
	n, c, h, w := 2, 3, 6, 5
	oc, kh, kw, stride, pad := 4, 3, 3, 2, 1
	x := New(n, c, h, w)
	wt := New(oc, c, kh, kw)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(wt, 0, 0.5)

	oh, ow := ConvOut(h, kh, stride, pad), ConvOut(w, kw, stride, pad)
	want := New(n, oc, oh, ow)
	for ni := 0; ni < n; ni++ {
		for o := 0; o < oc; o++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float64
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < kh; ky++ {
							for kx := 0; kx < kw; kx++ {
								iy, ix := oy*stride+ky-pad, ox*stride+kx-pad
								if iy < 0 || iy >= h || ix < 0 || ix >= w {
									continue
								}
								s += float64(x.At(ni, ci, iy, ix)) * float64(wt.At(o, ci, ky, kx))
							}
						}
					}
					want.Set(float32(s), ni, o, oy, ox)
				}
			}
		}
	}

	cols := Im2Col(x, kh, kw, stride, pad)
	wmat := wt.Reshape(oc, c*kh*kw)
	got := MatMul(cols, Transpose2D(wmat)) // [n*oh*ow, oc]
	for ni := 0; ni < n; ni++ {
		for o := 0; o < oc; o++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := got.At((ni*oh+oy)*ow+ox, o)
					wv := want.At(ni, o, oy, ox)
					if !almostEq(float64(g), float64(wv), 1e-3) {
						t.Fatalf("conv mismatch at n=%d o=%d y=%d x=%d: %v vs %v", ni, o, oy, ox, g, wv)
					}
				}
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n, c := 1+rng.Intn(2), 1+rng.Intn(3)
		h, w := 3+rng.Intn(4), 3+rng.Intn(4)
		k := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		if h+2*pad < k || w+2*pad < k {
			return true
		}
		x := New(n, c, h, w)
		rng.FillNormal(x, 0, 1)
		cols := Im2Col(x, k, k, stride, pad)
		y := New(cols.Shape()...)
		rng.FillNormal(y, 0, 1)

		var lhs float64
		for i := range cols.Data() {
			lhs += float64(cols.Data()[i]) * float64(y.Data()[i])
		}
		back := Col2Im(y, n, c, h, w, k, k, stride, pad)
		var rhs float64
		for i := range x.Data() {
			rhs += float64(x.Data()[i]) * float64(back.Data()[i])
		}
		return almostEq(lhs, rhs, 1e-2+1e-3*math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	out, arg := MaxPool(x, 2, 2)
	want := []float32{6, 8, 14, 16}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Fatalf("MaxPool out = %v, want %v", out.Data(), want)
		}
	}
	g := Full(1, 1, 1, 2, 2)
	gi := MaxPoolBackward(g, arg, x.Shape())
	// Gradient lands only on the max positions.
	var nz int
	for i, v := range gi.Data() {
		if v != 0 {
			nz++
			if x.Data()[i] != out.Data()[(nz-1)] && v != 1 {
				t.Fatalf("gradient misrouted at %d", i)
			}
		}
	}
	if nz != 4 {
		t.Fatalf("expected 4 nonzero grads, got %d", nz)
	}
}

func TestAvgPoolGlobalRoundTrip(t *testing.T) {
	rng := NewRNG(7)
	x := New(2, 3, 4, 4)
	rng.FillNormal(x, 0, 1)
	out := AvgPoolGlobal(x)
	if out.Dim(0) != 2 || out.Dim(1) != 3 {
		t.Fatalf("AvgPoolGlobal shape = %v", out.Shape())
	}
	var s float64
	for _, v := range x.Data()[:16] {
		s += float64(v)
	}
	if !almostEq(float64(out.At(0, 0)), s/16, 1e-4) {
		t.Fatalf("AvgPoolGlobal value mismatch: %v vs %v", out.At(0, 0), s/16)
	}
	g := Full(1, 2, 3)
	gi := AvgPoolGlobalBackward(g, 4, 4)
	if !almostEq(float64(gi.At(0, 0, 0, 0)), 1.0/16, 1e-6) {
		t.Fatalf("AvgPoolGlobalBackward value = %v", gi.At(0, 0, 0, 0))
	}
}

func TestInterpolateIdentity(t *testing.T) {
	rng := NewRNG(3)
	x := New(1, 2, 5, 5)
	rng.FillNormal(x, 0, 1)
	y := Interpolate(x, 5, 5)
	for i := range x.Data() {
		if x.Data()[i] != y.Data()[i] {
			t.Fatal("identity interpolation must copy input")
		}
	}
}

func TestInterpolatePreservesConstant(t *testing.T) {
	x := Full(3.5, 1, 1, 4, 4)
	y := Interpolate(x, 7, 3)
	for _, v := range y.Data() {
		if !almostEq(float64(v), 3.5, 1e-5) {
			t.Fatalf("constant field not preserved: %v", v)
		}
	}
}

// Property: interpolation backward is the adjoint of forward.
func TestInterpolateAdjointProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		h, w := 2+rng.Intn(5), 2+rng.Intn(5)
		oh, ow := 2+rng.Intn(5), 2+rng.Intn(5)
		x := New(1, 2, h, w)
		rng.FillNormal(x, 0, 1)
		y := Interpolate(x, oh, ow)
		g := New(1, 2, oh, ow)
		rng.FillNormal(g, 0, 1)
		var lhs float64
		for i := range y.Data() {
			lhs += float64(y.Data()[i]) * float64(g.Data()[i])
		}
		back := InterpolateBackward(g, h, w)
		var rhs float64
		for i := range x.Data() {
			rhs += float64(x.Data()[i]) * float64(back.Data()[i])
		}
		return almostEq(lhs, rhs, 1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	rng := NewRNG(12345)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance too far from 1: %v", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	rng := NewRNG(5)
	p := rng.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
