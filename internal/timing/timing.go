// Package timing provides the one wall-clock measurement loop shared by
// engine.Measure and estimator.Latency, which previously each hand-rolled a
// warmup + repeated-runs loop with subtly different aggregation.
//
// The aggregate is the MINIMUM over runs, not a mean: latency noise on a
// shared machine is strictly additive (scheduler preemption, cache
// eviction, GC pauses can only slow a run down, never speed it up), so the
// minimum is the lowest-variance estimator of the intrinsic cost of the
// measured code and the most robust to interference from concurrent load —
// exactly what the SA search needs when it compares thousands of candidate
// latencies against each other.
package timing

import "time"

// MinOfRuns executes f warmup times untimed (populating caches, JIT-like
// pool growth, branch predictors), then runs timed executions and returns
// the fastest. warmup and runs are clamped to at least 0 and 1.
func MinOfRuns(warmup, runs int, f func()) time.Duration {
	if runs <= 0 {
		runs = 1
	}
	for i := 0; i < warmup; i++ {
		f()
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < runs; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
