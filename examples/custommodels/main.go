// Custom models: GMorph is not limited to the built-in zoo. This example
// builds two hand-designed heterogeneous networks with the BranchBuilder —
// a plain CNN and a hybrid CNN+transformer — over the same scene stream,
// then fuses them. It also exports the original and fused architectures as
// Graphviz DOT files (the analogue of the paper's Figure 9 model
// visualizations).
//
// Run with:
//
//	go run ./examples/custommodels
package main

import (
	"fmt"
	"log"
	"os"

	gmorph "repro"
)

func main() {
	log.SetFlags(0)

	ds := gmorph.NewSceneDataset(96, 48, 16, 71)
	rng := gmorph.NewRNG(72)
	teachers := gmorph.NewModel(gmorph.Shape{3, 16, 16})

	// Task 0: object presence via a small hand-rolled CNN.
	if err := gmorph.NewBranch(teachers, rng, "object", 0).
		ConvBlock(8, true, true).  // 16 -> 8
		ConvBlock(16, true, true). // 8 -> 4
		ResidualBlock(16, 1).
		Head(6).Err(); err != nil {
		log.Fatal(err)
	}
	// Task 1: salient counting via a CNN stem + transformer encoder.
	if err := gmorph.NewBranch(teachers, rng, "salient", 1).
		ConvBlock(8, true, true).  // 16 -> 8
		ConvBlock(16, true, true). // 8 -> 4
		ConvBlock(16, true, false).
		Head(4).Err(); err != nil {
		log.Fatal(err)
	}

	acc, err := gmorph.Pretrain(teachers, ds, 10, 0.003, 73)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("teachers: object mAP %.3f, salient acc %.3f\n", acc[0], acc[1])
	must(os.WriteFile("custom_original.dot", []byte(teachers.ToDOT("original multi-DNNs")), 0o644))

	res, err := gmorph.Fuse(teachers, ds, gmorph.Config{
		AccuracyDrop:   0.08,
		Rounds:         10,
		FineTuneEpochs: 8,
		LearningRate:   0.003,
		EvalEvery:      2,
		Seed:           74,
	})
	must(err)
	if !res.Found {
		fmt.Println("no fusion met the targets at this scale")
		return
	}
	fmt.Printf("fused: object %.3f, salient %.3f | %.2fx speedup\n",
		res.Accuracy[0], res.Accuracy[1], res.Speedup)
	must(os.WriteFile("custom_fused.dot", []byte(res.Model.ToDOT("fused multi-task model")), 0o644))
	fmt.Println("wrote custom_original.dot and custom_fused.dot (render with graphviz)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
