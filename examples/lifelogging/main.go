// Lifelogging (benchmark B5 from the paper): an object-detection ResNet-34
// and a saliency-counting VGG-16 — two entirely different backbone families
// — watch the same scene stream. MTL cannot share anything between them;
// GMorph fuses across families via Rescale adapters. The example also
// compiles both the original and the fused model with the fused inference
// engine (the TensorRT stand-in), reproducing the Table 3 story.
//
// Run with:
//
//	go run ./examples/lifelogging
package main

import (
	"fmt"
	"log"

	gmorph "repro"
)

func main() {
	log.SetFlags(0)

	ds := gmorph.NewSceneDataset(128, 64, 32, 31)
	rng := gmorph.NewRNG(32)
	teachers := gmorph.NewModel(gmorph.Shape{3, 32, 32})
	zoo := gmorph.ZooConfig{WidthScale: 4}
	must(gmorph.AddBranch(teachers, rng, zoo, gmorph.ResNet34, "object", 0, 6))
	must(gmorph.AddBranch(teachers, rng, zoo, gmorph.VGG16, "salient", 1, 4))

	teacherAcc, err := gmorph.Pretrain(teachers, ds, 10, 0.003, 33)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("teachers: object mAP %.3f, salient acc %.3f\n", teacherAcc[0], teacherAcc[1])

	// Heterogeneous backbones: the MTL common prefix is empty, so
	// All-shared degenerates to the original models.
	shared, err := gmorph.AllShared(teachers)
	must(err)
	fmt.Printf("all-shared baseline FLOPs: %d (original %d) — no sharing possible\n",
		gmorph.FLOPs(shared), gmorph.FLOPs(teachers))

	res, err := gmorph.Fuse(teachers, ds, gmorph.Config{
		AccuracyDrop:   0.05,
		Rounds:         12,
		FineTuneEpochs: 10,
		LearningRate:   0.002,
		EvalEvery:      2,
		Seed:           34,
	})
	must(err)
	if !res.Found {
		fmt.Println("gmorph: no candidate met the targets at this tiny scale")
		return
	}
	fmt.Printf("gmorph fused: object %.3f salient %.3f | %.2fx speedup\n",
		res.Accuracy[0], res.Accuracy[1], res.Speedup)

	// Compiler complementarity: measure both models under both engines.
	shape := gmorph.Shape{3, 32, 32}
	type row struct {
		name string
		m    *gmorph.Model
	}
	for _, r := range []row{{"original", teachers}, {"fused", res.Model}} {
		refLat := gmorph.MeasureEngine(gmorph.ReferenceEngine(r.m), shape, 4)
		compLat := gmorph.MeasureEngine(gmorph.CompileFused(r.m), shape, 4)
		fmt.Printf("%-8s reference %v | compiled %v\n", r.name, refLat, compLat)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
