// General Language Understanding (benchmark B7 from the paper): a
// BERT-Large grammaticality model (CoLA, scored with Matthews correlation)
// and a BERT-Base sentiment model (SST-2, scored with accuracy) read the
// same token stream. The two transformers differ in depth and hidden size;
// GMorph shares encoder blocks across them via token-space Rescale
// adapters.
//
// Run with:
//
//	go run ./examples/glue
package main

import (
	"fmt"
	"log"

	gmorph "repro"
)

func main() {
	log.SetFlags(0)

	ds := gmorph.NewTextDataset(160, 80, 12, 51)
	rng := gmorph.NewRNG(52)
	teachers := gmorph.NewModel(gmorph.Shape{12})
	zoo := gmorph.ZooConfig{Vocab: 40}
	must(gmorph.AddBranch(teachers, rng, zoo, gmorph.BERTLarge, "cola", 0, 2))
	must(gmorph.AddBranch(teachers, rng, zoo, gmorph.BERTBase, "sst", 1, 2))

	teacherAcc, err := gmorph.Pretrain(teachers, ds, 12, 0.002, 53)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("teachers: cola MCC %.3f, sst acc %.3f | latency %v\n",
		teacherAcc[0], teacherAcc[1], gmorph.Latency(teachers))

	res, err := gmorph.Fuse(teachers, ds, gmorph.Config{
		AccuracyDrop:     0.08, // MCC is noisier than accuracy at tiny scale
		Rounds:           10,
		FineTuneEpochs:   8,
		LearningRate:     0.002,
		EvalEvery:        2,
		EarlyTermination: true,
		Seed:             54,
	})
	must(err)
	if !res.Found {
		fmt.Println("gmorph: no candidate met the targets at this tiny scale")
		return
	}
	fmt.Printf("gmorph fused: cola %.3f sst %.3f | %.2fx speedup, search %.1fs\n",
		res.Accuracy[0], res.Accuracy[1], res.Speedup, res.SearchTime.Seconds())
	fmt.Printf("blocks: %d -> %d\n", teachers.NodeCount(), res.Model.NodeCount())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
