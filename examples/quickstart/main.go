// Quickstart: fuse two small VGG-11 classifiers that watch the same face
// stream into one multi-task model, then verify accuracy and speedup.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gmorph "repro"
)

func main() {
	log.SetFlags(0)

	// 1. A shared input stream with two prediction tasks.
	ds := gmorph.NewFaceDataset(128, 64, 32, 7, "gender", "ethnicity")

	// 2. Two independently pre-trained task-specific DNNs (the "teachers").
	rng := gmorph.NewRNG(42)
	teachers := gmorph.NewModel(gmorph.Shape{3, 32, 32})
	zoo := gmorph.ZooConfig{WidthScale: 4}
	must(gmorph.AddBranch(teachers, rng, zoo, gmorph.VGG11, "gender", 0, 2))
	must(gmorph.AddBranch(teachers, rng, zoo, gmorph.VGG11, "ethnicity", 1, 3))
	acc, err := gmorph.Pretrain(teachers, ds, 10, 0.004, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("teachers: gender %.3f, ethnicity %.3f, latency %v\n",
		acc[0], acc[1], gmorph.Latency(teachers))

	// 3. Fuse: search for a multi-task model within a 5%-drop budget.
	res, err := gmorph.Fuse(teachers, ds, gmorph.Config{
		AccuracyDrop:   0.05,
		Rounds:         10,
		FineTuneEpochs: 10,
		LearningRate:   0.003,
		EvalEvery:      2,
		Seed:           3,
	})
	must(err)

	if !res.Found {
		fmt.Println("no fusion met the accuracy targets; keeping the originals")
		return
	}
	fmt.Printf("fused:    gender %.3f, ethnicity %.3f, latency %v (%.2fx speedup)\n",
		res.Accuracy[0], res.Accuracy[1], res.FusedLatency, res.Speedup)
	fmt.Printf("FLOPs: %d -> %d\n", gmorph.FLOPs(teachers), gmorph.FLOPs(res.Model))

	// 4. Persist the fused model.
	must(gmorph.Save("fused_quickstart.gmck", res.Model))
	fmt.Println("saved fused model to fused_quickstart.gmck")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
