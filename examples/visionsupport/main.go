// Vision Support (benchmark B1 from the paper): three VGG-13 networks
// predict age, gender, and ethnicity from the same face stream. This
// example compares GMorph's fusion against the All-shared and TreeMTL
// multi-task-learning baselines, mirroring the paper's Table 4 story: MTL
// can only share architecturally identical prefixes, while GMorph searches
// feature-sharing configurations freely.
//
// Run with:
//
//	go run ./examples/visionsupport
package main

import (
	"fmt"
	"log"

	gmorph "repro"
)

func main() {
	log.SetFlags(0)

	ds := gmorph.NewFaceDataset(128, 64, 32, 21, "age", "gender", "ethnicity")
	rng := gmorph.NewRNG(22)
	teachers := gmorph.NewModel(gmorph.Shape{3, 32, 32})
	zoo := gmorph.ZooConfig{WidthScale: 4}
	must(gmorph.AddBranch(teachers, rng, zoo, gmorph.VGG13, "age", 0, 4))
	must(gmorph.AddBranch(teachers, rng, zoo, gmorph.VGG13, "gender", 1, 2))
	must(gmorph.AddBranch(teachers, rng, zoo, gmorph.VGG13, "ethnicity", 2, 3))

	teacherAcc, err := gmorph.Pretrain(teachers, ds, 10, 0.004, 23)
	if err != nil {
		log.Fatal(err)
	}
	origLat := gmorph.Latency(teachers)
	fmt.Printf("teachers: age %.3f gender %.3f ethnicity %.3f | latency %v\n",
		teacherAcc[0], teacherAcc[1], teacherAcc[2], origLat)

	// MTL baselines: identical architectures, so the whole backbone is a
	// common prefix and both baselines can share deeply.
	shared, err := gmorph.AllShared(teachers)
	must(err)
	fmt.Printf("all-shared baseline: FLOPs %d -> %d (%.2fx fewer)\n",
		gmorph.FLOPs(teachers), gmorph.FLOPs(shared),
		float64(gmorph.FLOPs(teachers))/float64(gmorph.FLOPs(shared)))

	tree, err := gmorph.TreeMTLRecommend(teachers)
	must(err)
	fmt.Printf("treeMTL recommendation: FLOPs %d\n", gmorph.FLOPs(tree))

	// GMorph fusion with all predictive filtering enabled.
	res, err := gmorph.Fuse(teachers, ds, gmorph.Config{
		AccuracyDrop:     0.05,
		Rounds:           12,
		FineTuneEpochs:   10,
		LearningRate:     0.003,
		EvalEvery:        2,
		EarlyTermination: true,
		RuleFilter:       true,
		Seed:             24,
	})
	must(err)
	if !res.Found {
		fmt.Println("gmorph: no candidate met the targets at this tiny scale")
		return
	}
	fmt.Printf("gmorph fused: age %.3f gender %.3f ethnicity %.3f | latency %v (%.2fx)\n",
		res.Accuracy[0], res.Accuracy[1], res.Accuracy[2], res.FusedLatency, res.Speedup)
	fmt.Printf("search: %.1fs over %d rounds, %d elites\n",
		res.SearchTime.Seconds(), len(res.Traces), len(res.Elites))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
