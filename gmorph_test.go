package gmorph_test

import (
	"path/filepath"
	"testing"

	gmorph "repro"
)

// buildTinyTeachers assembles a two-task VGG-11 pair on the synthetic face
// stream and pre-trains it. Shared across the public-API tests and the
// search benchmarks.
func buildTinyTeachers(t testing.TB) (*gmorph.Model, *gmorph.Dataset, map[int]float64) {
	t.Helper()
	ds := gmorph.NewFaceDataset(96, 48, 32, 11, "gender", "ethnicity")
	rng := gmorph.NewRNG(12)
	m := gmorph.NewModel(gmorph.Shape{3, 32, 32})
	zoo := gmorph.ZooConfig{WidthScale: 4}
	if err := gmorph.AddBranch(m, rng, zoo, gmorph.VGG11, "gender", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := gmorph.AddBranch(m, rng, zoo, gmorph.VGG11, "ethnicity", 1, 3); err != nil {
		t.Fatal(err)
	}
	acc, err := gmorph.Pretrain(m, ds, 8, 0.004, 13)
	if err != nil {
		t.Fatal(err)
	}
	for id, a := range acc {
		if a < 0.55 {
			t.Fatalf("teacher task %d only reached %.2f", id, a)
		}
	}
	return m, ds, acc
}

func TestFuseEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	teachers, ds, teacherAcc := buildTinyTeachers(t)
	origFLOPs := gmorph.FLOPs(teachers)

	res, err := gmorph.Fuse(teachers, ds, gmorph.Config{
		AccuracyDrop:   0.08,
		Rounds:         8,
		FineTuneEpochs: 10,
		LearningRate:   0.003,
		EvalEvery:      2,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("fusion found no candidate meeting the targets")
	}
	if res.Speedup <= 1 {
		t.Fatalf("speedup = %.2f, want > 1", res.Speedup)
	}
	if gmorph.FLOPs(res.Model) >= origFLOPs {
		t.Fatal("fused model does not reduce FLOPs")
	}
	// Accuracy within the allowed drop.
	finalAcc, err := gmorph.Evaluate(res.Model, ds)
	if err != nil {
		t.Fatal(err)
	}
	for id, target := range res.Targets {
		if finalAcc[id] < target-1e-9 {
			t.Fatalf("task %d accuracy %.3f below target %.3f (teacher %.3f)",
				id, finalAcc[id], target, teacherAcc[id])
		}
	}

	// Checkpoint round trip through the public API.
	path := filepath.Join(t.TempDir(), "fused.gmck")
	if err := gmorph.Save(path, res.Model); err != nil {
		t.Fatal(err)
	}
	loaded, err := gmorph.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	reAcc, err := gmorph.Evaluate(loaded, ds)
	if err != nil {
		t.Fatal(err)
	}
	for id := range finalAcc {
		if reAcc[id] != finalAcc[id] {
			t.Fatalf("reloaded model accuracy differs: %v vs %v", reAcc, finalAcc)
		}
	}

	// The fused engine must agree with the reference on the fused model.
	ref := gmorph.ReferenceEngine(res.Model)
	fused := gmorph.CompileFused(res.Model)
	x := ds.Test.Batch(0, 4)
	a := ref.Forward(x)
	b := fused.Forward(x)
	for id := range a {
		for i := range a[id].Data() {
			d := float64(a[id].Data()[i] - b[id].Data()[i])
			if d > 1e-3 || d < -1e-3 {
				t.Fatal("fused engine diverges from reference")
			}
		}
	}
}

// TestFuseSearchSmoke drives a short random-policy search through the public
// API and checks the search-speed surface added with memoization: the
// fingerprint helper, the Stats counters, and their bookkeeping identity
// (every consulted candidate is either a hit or a miss, every miss is a
// fine-tuning run when no filtering is active).
func TestFuseSearchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	teachers, ds, _ := buildTinyTeachers(t)
	fp := gmorph.Fingerprint(teachers)
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex digits", fp)
	}
	if gmorph.Fingerprint(teachers) != fp {
		t.Fatal("fingerprint not stable across calls")
	}

	res, err := gmorph.Fuse(teachers, ds, gmorph.Config{
		AccuracyDrop:   0.10,
		Rounds:         6,
		FineTuneEpochs: 8,
		LearningRate:   0.003,
		EvalEvery:      2,
		RandomPolicy:   true,
		Seed:           17,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.FineTuned == 0 {
		t.Fatalf("no fine-tuning recorded: %+v", st)
	}
	// No rule filter and no early termination in this config: every sampled
	// candidate consults the cache, and every miss is fine-tuned.
	if st.CacheHits+st.CacheMisses != len(res.Traces) {
		t.Fatalf("cache consultations %d+%d don't cover %d rounds", st.CacheHits, st.CacheMisses, len(res.Traces))
	}
	if st.CacheMisses != st.FineTuned {
		t.Fatalf("misses %d != fine-tuned %d", st.CacheMisses, st.FineTuned)
	}
	if res.Found && gmorph.Fingerprint(res.Model) == fp {
		t.Fatal("fused model has the original's fingerprint")
	}
}

func TestFuseRejectsEmptyModel(t *testing.T) {
	ds := gmorph.NewFaceDataset(4, 4, 16, 1)
	m := gmorph.NewModel(gmorph.Shape{3, 16, 16})
	if _, err := gmorph.Fuse(m, ds, gmorph.Config{}); err == nil {
		t.Fatal("empty model accepted")
	}
}

func TestMTLBaselinesViaPublicAPI(t *testing.T) {
	teachers, _, _ := buildTinyTeachers(t)
	shared, err := gmorph.AllShared(teachers)
	if err != nil {
		t.Fatal(err)
	}
	if gmorph.FLOPs(shared) > gmorph.FLOPs(teachers) {
		t.Fatal("all-shared cost more than original")
	}
	rec, err := gmorph.TreeMTLRecommend(teachers)
	if err != nil {
		t.Fatal(err)
	}
	if gmorph.FLOPs(rec) > gmorph.FLOPs(teachers) {
		t.Fatal("TreeMTL recommendation cost more than original")
	}
}

func TestDatasetConstructors(t *testing.T) {
	face := gmorph.NewFaceDataset(8, 4, 16, 2)
	if len(face.Tasks) != 4 {
		t.Fatalf("face tasks = %d", len(face.Tasks))
	}
	scene := gmorph.NewSceneDataset(8, 4, 16, 3)
	if len(scene.Tasks) != 2 {
		t.Fatalf("scene tasks = %d", len(scene.Tasks))
	}
	text := gmorph.NewTextDataset(8, 4, 12, 4)
	if len(text.Tasks) != 2 {
		t.Fatalf("text tasks = %d", len(text.Tasks))
	}
}

func TestFuseFLOPsMetricAndRandomPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	teachers, ds, _ := buildTinyTeachers(t)
	res, err := gmorph.Fuse(teachers, ds, gmorph.Config{
		AccuracyDrop:   0.10,
		Rounds:         5,
		FineTuneEpochs: 8,
		LearningRate:   0.003,
		EvalEvery:      2,
		OptimizeFLOPs:  true,
		RandomPolicy:   true,
		Seed:           91,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found && gmorph.FLOPs(res.Model) >= gmorph.FLOPs(teachers) {
		t.Fatal("FLOPs-optimized fusion did not reduce FLOPs")
	}
	// Traces must exist regardless of outcome.
	if len(res.Traces) == 0 {
		t.Fatal("no traces recorded")
	}
}

func TestFuseOpGranularity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ds := gmorph.NewFaceDataset(64, 32, 32, 93, "gender", "ethnicity")
	rng := gmorph.NewRNG(94)
	m := gmorph.NewModel(gmorph.Shape{3, 32, 32})
	zoo := gmorph.ZooConfig{WidthScale: 4, OpGranularity: true}
	if err := gmorph.AddBranch(m, rng, zoo, gmorph.VGG11, "gender", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := gmorph.AddBranch(m, rng, zoo, gmorph.VGG11, "ethnicity", 1, 3); err != nil {
		t.Fatal(err)
	}
	if m.NodeCount() != 60 { // 2 x (8 conv + 8 bn + 8 relu + 5 pool + head)
		t.Fatalf("op-granularity node count %d, want 60", m.NodeCount())
	}
	if _, err := gmorph.Pretrain(m, ds, 6, 0.004, 95); err != nil {
		t.Fatal(err)
	}
	res, err := gmorph.Fuse(m, ds, gmorph.Config{
		AccuracyDrop:   0.10,
		Rounds:         5,
		FineTuneEpochs: 8,
		LearningRate:   0.003,
		EvalEvery:      2,
		Seed:           96,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found && gmorph.FLOPs(res.Model) >= gmorph.FLOPs(m) {
		t.Fatal("op-granularity fusion did not reduce cost")
	}
}
