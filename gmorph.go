// Package gmorph is a pure-Go reproduction of "GMorph: Accelerating
// Multi-DNN Inference via Model Fusion" (Yang et al., EuroSys 2024).
//
// GMorph fuses multiple separately pre-trained, possibly heterogeneous
// task-specific DNNs that consume the same input stream into one efficient
// multi-task model, preserving each task's accuracy. It works by mutating
// an abstract graph of the models — re-routing computation blocks so tasks
// share intermediate features — and searching the mutation space with a
// simulated-annealing policy, filtering non-promising candidates before
// and during distillation-based fine-tuning.
//
// The package exposes the end-to-end flow:
//
//	ds := gmorph.NewFaceDataset(...)            // or your own Dataset
//	teachers := gmorph.NewModel(inputShape)     // build + pretrain branches
//	...
//	result, err := gmorph.Fuse(teachers, ds, gmorph.Config{
//	    AccuracyDrop: 0.01,
//	    Rounds:       50,
//	})
//	fused := result.Model                        // trained multi-task model
//
// Everything — tensors, autodiff layers, the model zoo, the search, the
// execution engines — is implemented in this repository with only the Go
// standard library.
package gmorph

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/distill"
	"repro/internal/engine"
	"repro/internal/estimator"
	"repro/internal/fingerprint"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/mtl"
	"repro/internal/parser"
	"repro/internal/quant"
	"repro/internal/search/coord"
	"repro/internal/search/explain"
	"repro/internal/search/predict"
	"repro/internal/search/worker"
	"repro/internal/tensor"
)

// Re-exported building blocks. Aliases keep the public API surface small
// while the implementation lives in internal packages.
type (
	// Model is a (multi-task) model represented as an abstract graph.
	Model = graph.Graph
	// Node is one computation block of a Model.
	Node = graph.Node
	// Shape is a per-sample feature shape.
	Shape = graph.Shape
	// Dataset is a multi-task dataset over one input stream.
	Dataset = data.Dataset
	// Tensor is a dense float32 tensor.
	Tensor = tensor.Tensor
	// RNG is the deterministic random generator used across the library.
	RNG = tensor.RNG
	// Elite is a trained fusion candidate that met the accuracy targets.
	Elite = core.Elite
	// Trace records one search round.
	Trace = core.Trace
	// SearchStats aggregates a search's filtering, memoization, and
	// warm-start counters.
	SearchStats = core.SearchStats
	// FusionDecision explains one search round: what was mutated, which
	// filter acted, predicted vs measured scores, and the outcome.
	FusionDecision = explain.Decision
	// SearchWorker is a stateless evaluation worker for the distributed
	// search (serve its Handler, point Config.Workers at it).
	SearchWorker = worker.Server
	// PredictorStats summarizes the learned pre-ranker's activity.
	PredictorStats = predict.Stats
	// Engine runs inference for a Model.
	Engine = engine.Engine
)

// Model zoo architecture names.
const (
	VGG11     = models.VGG11
	VGG13     = models.VGG13
	VGG16     = models.VGG16
	ResNet18  = models.ResNet18
	ResNet34  = models.ResNet34
	ViTBase   = models.ViTBase
	ViTLarge  = models.ViTLarge
	BERTBase  = models.BERTBase
	BERTLarge = models.BERTLarge
)

// NewRNG returns a deterministic random generator.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// NewModel creates an empty model whose branches share an input of the
// given per-sample shape (e.g. Shape{3, 32, 32} for RGB images or
// Shape{16} for token ids).
func NewModel(inputShape Shape) *Model {
	return graph.New(inputShape, graph.DomainRaw)
}

// ZooConfig scales the built-in model zoo.
type ZooConfig struct {
	// WidthScale divides reference channel widths (1 = widest).
	WidthScale int
	// Vocab sizes BERT embeddings (default 40).
	Vocab int
	// OpGranularity traces each basic operator (Conv2d, BatchNorm, ReLU,
	// MaxPool) as its own graph node instead of one node per block,
	// enlarging the mutation search space (VGG family only).
	OpGranularity bool
}

// AddBranch appends a task branch with the named zoo architecture to the
// model and names the task.
func AddBranch(m *Model, rng *RNG, zoo ZooConfig, arch, taskName string, taskID, classes int) error {
	cfg := models.Config{WidthScale: zoo.WidthScale, Vocab: zoo.Vocab}
	if zoo.OpGranularity {
		cfg.Granularity = models.GranularityOp
	}
	if _, err := models.AddBranch(m, rng, cfg, arch, taskID, classes); err != nil {
		return err
	}
	m.TaskNames[taskID] = taskName
	m.RefreshCapacities()
	return nil
}

// NewFaceDataset generates the synthetic face stream (age / gender /
// ethnicity / emotion tasks). See data.FaceConfig for semantics.
func NewFaceDataset(train, test, size int, seed uint64, tasks ...string) *Dataset {
	if len(tasks) == 0 {
		tasks = nil
	}
	return data.NewFace(data.FaceConfig{
		Train: train, Test: test, Size: size, Noise: 0.08, Seed: seed, Tasks: tasks,
	})
}

// NewSceneDataset generates the synthetic scene stream (multi-label object
// presence + salient-object counting).
func NewSceneDataset(train, test, size int, seed uint64) *Dataset {
	return data.NewScene(data.SceneConfig{
		Train: train, Test: test, Size: size,
		ObjectClasses: 6, MaxObjects: 3, Noise: 0.05, Seed: seed,
	})
}

// NewTextDataset generates the synthetic token stream (CoLA-style
// grammaticality + SST-style sentiment).
func NewTextDataset(train, test, seqLen int, seed uint64) *Dataset {
	return data.NewText(data.TextConfig{Train: train, Test: test, SeqLen: seqLen, Vocab: 40, Seed: seed})
}

// Pretrain trains the model's branches on the dataset's task labels,
// standing in for loading pre-trained checkpoints. It returns each task's
// test metric.
func Pretrain(m *Model, ds *Dataset, epochs int, lr float32, seed uint64) (map[int]float64, error) {
	return bench.Pretrain(m, ds, epochs, lr, seed)
}

// Config controls a fusion search, mirroring the paper's configuration
// file: optimization metric, accuracy threshold, fine-tuning
// hyperparameters, and search budget.
type Config struct {
	// AccuracyDrop is the tolerated per-task metric drop (0, 0.01, ...).
	AccuracyDrop float64
	// Rounds is the number of graph mutation iterations (default 50).
	Rounds int
	// MaxPairsPerPass bounds how many node pairs one mutation pass applies
	// (the paper uses 1-2; default 2).
	MaxPairsPerPass int
	// FineTuneEpochs bounds each candidate's fine-tuning (default 10).
	FineTuneEpochs int
	// LearningRate for distillation fine-tuning (default 1e-3).
	LearningRate float32
	// BatchSize for fine-tuning minibatches (default 16).
	BatchSize int
	// EvalEvery epochs between test metric measurements (default 1).
	EvalEvery int
	// OptimizeFLOPs switches the objective from latency to FLOPs.
	OptimizeFLOPs bool
	// EarlyTermination enables learning-curve-based cancellation (the
	// paper's "GMorph w P").
	EarlyTermination bool
	// RuleFilter additionally enables capacity-rule skipping ("w P+R").
	RuleFilter bool
	// RandomPolicy replaces simulated annealing with the random-sampling
	// baseline.
	RandomPolicy bool
	// DisableSearchCache turns off fingerprint-keyed memoization of
	// candidate outcomes and latency measurements, re-evaluating every
	// sampled duplicate (the pre-memoization behavior; mainly for A/B
	// comparisons).
	DisableSearchCache bool
	// DisableWarmStart fine-tunes elite-derived candidates under the full
	// epoch budget instead of the shrunken warm-start budget.
	DisableWarmStart bool
	// Seed drives all randomness (default 1).
	Seed uint64
	// TimeBudget optionally bounds the search wall-clock.
	TimeBudget time.Duration
	// Teachers optionally overrides the per-task accuracy targets; when
	// nil they are measured from the input model before searching.
	Targets map[int]float64
	// OnRound observes each search round.
	OnRound func(Trace)
	// StateDir, when set, makes the search resumable: existing state in
	// the directory seeds the elite list and iteration counter, and the
	// final state is written back after the search.
	StateDir string
	// Workers lists worker endpoints ("host:port" or full URLs) for a
	// distributed search: the coordinator keeps all search state and fans
	// fine-tune/measure jobs across the workers (see NewSearchWorker). The
	// result is bit-identical to a local search with the same Seed.
	Workers []string
	// SearchBatch is the number of candidates sampled per round in the
	// parallel/distributed optimizer (default 4). Setting it (or Workers)
	// selects the batched optimizer; the search trajectory depends on
	// SearchBatch but not on worker count.
	SearchBatch int
	// MemoPath persists the search memo (candidate outcomes, trained
	// weights, machine-keyed latency measurements) to a JSON file: a
	// re-run of the same search replays it with zero duplicate
	// measurements, and the learned pre-ranker trains on the corpus.
	MemoPath string
	// Predict enables the learned pre-ranker: ridge models over graph
	// features, trained on the memo corpus, skip candidates predicted to
	// violate the accuracy budget (with periodic forced exploration).
	Predict bool
	// PredictMargin is the pre-ranker's skip threshold (default 0.02):
	// skip only when the predicted margin is below -PredictMargin.
	PredictMargin float64
	// PredictExplore forces every Nth would-be-skipped candidate through
	// to measurement (default 8).
	PredictExplore int
}

// Result is the outcome of Fuse.
type Result struct {
	// Model is the best trained multi-task model (the original when no
	// candidate met the targets — check Found).
	Model *Model
	// Found reports whether any candidate met the accuracy targets.
	Found bool
	// Speedup is original latency / fused latency (1 when !Found).
	Speedup float64
	// OriginalLatency and FusedLatency are measured inference times.
	OriginalLatency, FusedLatency time.Duration
	// Accuracy is the fused model's per-task test metric.
	Accuracy map[int]float64
	// Targets are the per-task accuracy thresholds used.
	Targets map[int]float64
	// SearchTime is the total search wall-clock.
	SearchTime time.Duration
	// Elites are all accepted candidates.
	Elites []*Elite
	// Traces are the per-round search records.
	Traces []Trace
	// Stats aggregates the search's filtering, memoization, and warm-start
	// counters (cache hit rates, rule skips, epochs spent, ...).
	Stats SearchStats
	// Evaluated counts sampled candidates (including skipped ones).
	Evaluated int
	// Decisions explains every search round: mutation tried, filter
	// outcomes, predicted vs measured scores (see cmd/inspect -fusion).
	Decisions []FusionDecision
	// Predictor summarizes the learned pre-ranker (nil unless
	// Config.Predict was set).
	Predictor *PredictorStats
}

// ErrNoTasks reports a model with no task branches.
var ErrNoTasks = errors.New("gmorph: model has no task branches")

// Fuse searches for an efficient multi-task fusion of the model's task
// branches, fine-tuning candidates against the input model's outputs
// (knowledge distillation — no task labels are used beyond measuring the
// test metric against the dataset).
func Fuse(teachers *Model, ds *Dataset, cfg Config) (*Result, error) {
	cfg = cfg.searchDefaults()
	setup, err := newSearchSetup(teachers, ds, cfg)
	if err != nil {
		return nil, err
	}
	targets := setup.targets

	coreCfg := core.Config{
		Rounds:           cfg.Rounds,
		MaxPairsPerPass:  cfg.MaxPairsPerPass,
		Seed:             cfg.Seed,
		TimeBudget:       cfg.TimeBudget,
		OnRound:          cfg.OnRound,
		DisableMemo:      cfg.DisableSearchCache,
		DisableWarmStart: cfg.DisableWarmStart,
	}
	if cfg.OptimizeFLOPs {
		coreCfg.Metric = core.OptimizeFLOPs
	}
	if cfg.RandomPolicy {
		coreCfg.Policy = core.RandomPolicy{}
	}
	if cfg.StateDir != "" {
		if elites, iter, err := core.LoadState(cfg.StateDir); err == nil {
			coreCfg.InitialElites = elites
			coreCfg.StartIteration = iter
		}
	}

	// Persistent memo: candidate outcomes and latency measurements survive
	// across runs, so repeating a search replays instead of re-measuring.
	var memo *core.DiskMemo
	if cfg.MemoPath != "" {
		if memo, err = core.NewDiskMemo(cfg.MemoPath); err != nil {
			return nil, fmt.Errorf("gmorph: loading search memo: %w", err)
		}
		coreCfg.Memo = memo
	}
	// Learned pre-ranker, warm-started from the memo corpus when present.
	var pred *predict.Predictor
	if cfg.Predict {
		pred = predict.New(predict.Options{
			Margin: cfg.PredictMargin, ExploreEvery: cfg.PredictExplore,
		})
		if memo != nil {
			core.PrimePreranker(pred, memo)
		}
		coreCfg.Preranker = pred
	}

	var res *core.Result
	if len(cfg.Workers) > 0 || cfg.SearchBatch > 0 {
		pcfg := core.ParallelConfig{Config: coreCfg, BatchSize: cfg.SearchBatch}
		if len(cfg.Workers) > 0 {
			sum, err := parser.Sum(teachers)
			if err != nil {
				return nil, fmt.Errorf("gmorph: checksumming world: %w", err)
			}
			pool, err := coord.NewPool(cfg.Workers, sum)
			if err != nil {
				return nil, err
			}
			pcfg.Evaluator = pool
		}
		res = core.NewParallelOptimizer(teachers, ds, setup.targets, setup.outs,
			ds.Train.X, setup.accOpts, pcfg).Run()
	} else {
		acc := estimator.NewAccuracyEstimator(ds, setup.targets, setup.outs, ds.Train.X, setup.accOpts)
		res = core.NewOptimizer(teachers, acc, coreCfg).Run()
	}

	if memo != nil {
		if err := memo.Save(); err != nil {
			return nil, fmt.Errorf("gmorph: saving search memo: %w", err)
		}
	}
	if cfg.StateDir != "" {
		last := coreCfg.StartIteration + cfg.Rounds
		if err := core.SaveState(cfg.StateDir, res, last); err != nil {
			return nil, err
		}
	}
	out := &Result{
		Model:      teachers,
		Targets:    targets,
		SearchTime: res.SearchTime,
		Elites:     res.Elites,
		Traces:     res.Traces,
		Stats:      res.Stats,
		Evaluated:  res.Evaluated,
		Decisions:  res.Decisions,
		Speedup:    1,
	}
	if pred != nil {
		s := pred.Stats()
		out.Predictor = &s
	}
	out.OriginalLatency = estimator.Latency(teachers, estimator.LatencyOptions{})
	if res.Best != nil {
		out.Model = res.Best.Graph
		out.Found = true
		out.FusedLatency = res.Best.Latency
		out.Accuracy = res.Best.Accuracy
		out.Speedup = float64(out.OriginalLatency) / float64(res.Best.Latency)
	} else {
		out.FusedLatency = out.OriginalLatency
	}
	return out, nil
}

// searchDefaults fills the Config defaults shared by the coordinator and
// search workers. Workers must see identical values: the fine-tune
// hyperparameters are part of what makes a remote evaluation bit-identical
// to a local one.
func (cfg Config) searchDefaults() Config {
	if cfg.Rounds == 0 {
		cfg.Rounds = 50
	}
	if cfg.FineTuneEpochs == 0 {
		cfg.FineTuneEpochs = 10
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 1e-3
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 16
	}
	if cfg.EvalEvery == 0 {
		cfg.EvalEvery = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// searchSetup holds the evaluation inputs shared by the local optimizers,
// the coordinator, and search workers.
type searchSetup struct {
	targets map[int]float64
	outs    distill.TeacherOutputs
	accOpts estimator.AccuracyOptions
}

// newSearchSetup validates the world and derives targets, teacher outputs,
// and estimator options. Everything here is deterministic in (teachers, ds,
// cfg), so a coordinator and its workers — each calling this on their own
// copy of the same world — agree on every evaluation input.
func newSearchSetup(teachers *Model, ds *Dataset, cfg Config) (*searchSetup, error) {
	if len(teachers.Heads) == 0 {
		return nil, ErrNoTasks
	}
	if err := teachers.Validate(); err != nil {
		return nil, err
	}
	targets := cfg.Targets
	if targets == nil {
		eval := &distill.Evaluator{Dataset: ds}
		measured, err := eval.Measure(teachers)
		if err != nil {
			return nil, fmt.Errorf("gmorph: measuring teachers: %w", err)
		}
		targets = make(map[int]float64, len(measured))
		for id, a := range measured {
			targets[id] = a - cfg.AccuracyDrop
		}
	}
	outs := distill.ComputeTeacherOutputs(teachers, ds.Train.X, 64)
	return &searchSetup{
		targets: targets,
		outs:    outs,
		accOpts: estimator.AccuracyOptions{
			FineTune: distill.Config{
				LR: cfg.LearningRate, Epochs: cfg.FineTuneEpochs,
				Batch: cfg.BatchSize, EvalEvery: cfg.EvalEvery, Seed: cfg.Seed,
			},
			UseEarlyTermination: cfg.EarlyTermination || cfg.RuleFilter,
			UseRuleFilter:       cfg.RuleFilter,
			Slack:               0.02,
		},
	}, nil
}

// NewSearchWorker builds a stateless evaluation worker for the distributed
// search. The worker must be constructed over the same world — teachers,
// dataset, and search Config — as the coordinator; the coordinator verifies
// the world checksum before dispatching. Serve the returned worker's
// Handler and list its address in Config.Workers:
//
//	w, _ := gmorph.NewSearchWorker(teachers, ds, cfg, 2)
//	http.ListenAndServe(":7070", w.Handler())
func NewSearchWorker(teachers *Model, ds *Dataset, cfg Config, slots int) (*SearchWorker, error) {
	cfg = cfg.searchDefaults()
	setup, err := newSearchSetup(teachers, ds, cfg)
	if err != nil {
		return nil, err
	}
	sum, err := parser.Sum(teachers)
	if err != nil {
		return nil, fmt.Errorf("gmorph: checksumming world: %w", err)
	}
	eval := core.NewLocalEvaluator(ds, setup.targets, setup.outs, ds.Train.X, setup.accOpts, slots)
	return worker.NewServer(eval, sum, len(teachers.Heads)), nil
}

// RenderFusionReport writes a human-readable per-decision fusion report
// (see also cmd/inspect -fusion over a saved decision file).
func RenderFusionReport(w io.Writer, decisions []FusionDecision) {
	explain.Render(w, decisions)
}

// SaveFusionReport persists a search's decisions as JSON for cmd/inspect.
func SaveFusionReport(path string, decisions []FusionDecision) error {
	return explain.Save(path, decisions)
}

// LoadFusionReport reads a decision file written by SaveFusionReport.
func LoadFusionReport(path string) ([]FusionDecision, error) {
	return explain.Load(path)
}

// QuantConfig tunes post-training quantization (see quant.Config).
type QuantConfig = quant.Config

// QuantReport is the outcome of Quantize: the per-op precision map and the
// measured per-task metrics before and after.
type QuantReport = quant.Report

// Quantize post-training-quantizes a trained model in place: it calibrates
// activation ranges on calib's train split, lowers eligible conv/linear
// layers to int8, and greedily de-quantizes the worst offenders until the
// held-out metric drop fits cfg.AccuracyDrop (default 1%). Weights are
// never modified — only annotations are attached — and CompileFused picks
// them up on the next compile. Quantize is a final step before Save/serve;
// further training silently invalidates the annotations.
func Quantize(m *Model, calib *Dataset, cfg QuantConfig) (*QuantReport, error) {
	return quant.Apply(m, calib, cfg)
}

// Evaluate measures a model's per-task test metric on the dataset.
func Evaluate(m *Model, ds *Dataset) (map[int]float64, error) {
	eval := &distill.Evaluator{Dataset: ds}
	return eval.Measure(m)
}

// Latency measures a model's inference wall-clock on a synthetic batch.
func Latency(m *Model) time.Duration {
	return estimator.Latency(m, estimator.LatencyOptions{})
}

// FLOPs returns a model's analytic per-sample floating point operations.
func FLOPs(m *Model) int64 { return m.FLOPs() }

// Fingerprint returns the model's canonical structural hash — the key the
// search uses to memoize candidate outcomes. It is stable under node-id
// relabeling and sibling reordering but changes under any structural
// mutation (see internal/fingerprint).
func Fingerprint(m *Model) string { return fingerprint.String(m) }

// Save writes a trained model checkpoint to path.
func Save(path string, m *Model) error { return parser.SaveFile(path, m) }

// Load reads a model checkpoint from path.
func Load(path string) (*Model, error) { return parser.LoadFile(path) }

// CompileFused compiles a trained model into the fused inference engine
// (conv+BN folding, fused activations, concurrent branches).
func CompileFused(m *Model) Engine { return engine.Compile(m) }

// ReferenceEngine wraps a model in the eager executor.
func ReferenceEngine(m *Model) Engine { return engine.NewReference(m) }

// MeasureEngine times an engine on a synthetic batch of the given
// per-sample input shape, returning a trimmed-mean latency.
func MeasureEngine(e Engine, inputShape Shape, batch int) time.Duration {
	return engine.Measure(e, inputShape, batch, 1, 5)
}

// NewTensor allocates a zero tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// AllShared builds the all-shared MTL baseline over the model's common
// prefix.
func AllShared(m *Model) (*Model, error) { return mtl.AllShared(m) }

// TreeMTLRecommend returns the TreeMTL recommendation (cheapest
// tree-structured sharing configuration over the common prefix).
func TreeMTLRecommend(m *Model) (*Model, error) {
	recs, err := mtl.TreeMTL(m)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, errors.New("gmorph: no TreeMTL recommendations")
	}
	return recs[0].Graph, nil
}
