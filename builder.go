package gmorph

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/nn"
)

// BranchBuilder assembles a custom task branch block by block, for models
// that are not in the built-in zoo. Each Add* call appends one abstract
// graph node; Head finishes the branch.
//
//	b := gmorph.NewBranch(model, rng, "depth", 0)
//	b.ConvBlock(16, true, true).ConvBlock(32, true, true).Head(1)
//	if err := b.Err(); err != nil { ... }
//
// Builders are not safe for concurrent use.
type BranchBuilder struct {
	m      *Model
	rng    *RNG
	name   string
	taskID int

	cur    *Node
	shape  graph.Shape
	domain graph.Domain
	opID   int
	done   bool
	err    error
}

// NewBranch starts a branch for the named task. The branch consumes the
// model's input shape.
func NewBranch(m *Model, rng *RNG, taskName string, taskID int) *BranchBuilder {
	b := &BranchBuilder{
		m: m, rng: rng, name: taskName, taskID: taskID,
		cur: m.Root, shape: m.Root.InputShape.Clone(), domain: graph.DomainRaw,
	}
	if _, exists := m.Heads[taskID]; exists {
		b.err = fmt.Errorf("gmorph: task %d already has a branch", taskID)
	}
	return b
}

// Err returns the first error encountered while building.
func (b *BranchBuilder) Err() error { return b.err }

func (b *BranchBuilder) add(opType string, layer nn.Layer) *BranchBuilder {
	if b.err != nil {
		return b
	}
	if b.done {
		b.err = errors.New("gmorph: branch already finished with Head")
		return b
	}
	n := graph.NewBlockNode(b.taskID, b.opID, opType, b.shape, b.domain, layer)
	b.m.AddChild(b.cur, n)
	b.cur = n
	b.shape = graph.Shape(layer.OutShape(b.shape))
	b.opID++
	if b.domain == graph.DomainRaw {
		b.domain = graph.DomainSpatial
		if len(b.shape) == 2 {
			b.domain = graph.DomainTokens
		}
	}
	return b
}

// ConvBlock appends a 3x3 convolution block (conv + optional BatchNorm +
// ReLU + optional 2x2 max pool). The input must be a [C,H,W] feature map.
func (b *BranchBuilder) ConvBlock(outChannels int, batchNorm, pool bool) *BranchBuilder {
	if b.err == nil && len(b.shape) != 3 {
		b.err = fmt.Errorf("gmorph: ConvBlock needs [C,H,W] input, have %v", b.shape)
		return b
	}
	return b.add("ConvBlock", nn.NewConvBlock(b.rng, b.shape[0], outChannels, batchNorm, pool))
}

// ResidualBlock appends a ResNet basic block with the given output channels
// and stride.
func (b *BranchBuilder) ResidualBlock(outChannels, stride int) *BranchBuilder {
	if b.err == nil && len(b.shape) != 3 {
		b.err = fmt.Errorf("gmorph: ResidualBlock needs [C,H,W] input, have %v", b.shape)
		return b
	}
	return b.add("ResidualBlock", nn.NewResidualBlock(b.rng, b.shape[0], outChannels, stride))
}

// PatchEmbed appends a ViT patch-embedding stem converting the image into
// tokens of dimension dim.
func (b *BranchBuilder) PatchEmbed(patch, dim int) *BranchBuilder {
	if b.err == nil {
		if len(b.shape) != 3 || b.shape[1]%patch != 0 || b.shape[2]%patch != 0 {
			b.err = fmt.Errorf("gmorph: PatchEmbed(p=%d) incompatible with input %v", patch, b.shape)
			return b
		}
	} else {
		return b
	}
	tokens := (b.shape[1] / patch) * (b.shape[2] / patch)
	nb := b.add("PatchEmbed", nn.NewPatchEmbed(b.rng, b.shape[0], patch, dim, tokens))
	nb.domain = graph.DomainTokens
	return nb
}

// Embedding appends a token-embedding stem for [T] token-id inputs.
func (b *BranchBuilder) Embedding(vocab, dim int) *BranchBuilder {
	if b.err == nil && len(b.shape) != 1 {
		b.err = fmt.Errorf("gmorph: Embedding needs [T] token input, have %v", b.shape)
		return b
	}
	if b.err != nil {
		return b
	}
	nb := b.add("Embedding", nn.NewEmbedding(b.rng, vocab, dim, b.shape[0]))
	nb.domain = graph.DomainTokens
	return nb
}

// TransformerBlock appends a pre-norm encoder block over [T,D] tokens.
func (b *BranchBuilder) TransformerBlock(heads, mlpDim int) *BranchBuilder {
	if b.err == nil && len(b.shape) != 2 {
		b.err = fmt.Errorf("gmorph: TransformerBlock needs [T,D] tokens, have %v", b.shape)
		return b
	}
	if b.err != nil {
		return b
	}
	return b.add("TransformerBlock", nn.NewTransformerBlock(b.rng, b.shape[1], heads, mlpDim))
}

// Head finishes the branch with a pooling + linear classifier over the
// given number of classes and registers the task.
func (b *BranchBuilder) Head(classes int) *BranchBuilder {
	if b.err != nil {
		return b
	}
	if b.done {
		b.err = errors.New("gmorph: branch already finished with Head")
		return b
	}
	var layer nn.Layer
	switch len(b.shape) {
	case 3:
		layer = nn.NewSequential(fmt.Sprintf("head-%s", b.name),
			nn.NewGlobalAvgPool(), nn.NewLinear(b.rng, b.shape[0], classes))
	case 2:
		layer = nn.NewSequential(fmt.Sprintf("head-%s", b.name),
			nn.NewTokenMeanPool(), nn.NewLinear(b.rng, b.shape[1], classes))
	default:
		b.err = fmt.Errorf("gmorph: cannot attach a head to features %v", b.shape)
		return b
	}
	n := graph.NewBlockNode(b.taskID, b.opID, "Head", b.shape, b.domain, layer)
	b.m.AddChild(b.cur, n)
	b.m.TaskNames[b.taskID] = b.name
	b.m.RefreshCapacities()
	b.done = true
	return b
}
