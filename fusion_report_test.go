package gmorph_test

import (
	"path/filepath"
	"strings"
	"testing"

	gmorph "repro"
)

// TestFuseDecisionsExplainEveryRound pins the explanation contract on the
// facade: every search round yields one FusionDecision, every elite's
// acceptance is marked, and the report round-trips through the decision
// file the CLI consumes (gmorph -decisions / inspect -fusion).
func TestFuseDecisionsExplainEveryRound(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	teachers, ds, _ := buildTinyTeachers(t)
	memoPath := filepath.Join(t.TempDir(), "memo.json")
	cfg := gmorph.Config{
		AccuracyDrop:    0.08,
		Rounds:          10,
		MaxPairsPerPass: 1,
		FineTuneEpochs:  6,
		LearningRate:    0.003,
		EvalEvery:       2,
		RandomPolicy:    true,
		Seed:            3,
		MemoPath:        memoPath,
	}
	res, err := gmorph.Fuse(teachers, ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 {
		t.Fatal("search produced no decisions")
	}
	if len(res.Decisions) != len(res.Traces) {
		t.Fatalf("decisions (%d) and traces (%d) disagree", len(res.Decisions), len(res.Traces))
	}
	eliteDecisions := 0
	for _, d := range res.Decisions {
		if d.Outcome == "" || (d.Outcome != "skipped" && d.Rule == "") {
			t.Fatalf("decision without rationale: %+v", d)
		}
		if d.Elite {
			eliteDecisions++
		}
	}
	if eliteDecisions != len(res.Elites) {
		t.Fatalf("%d elite-marked decisions for %d elites", eliteDecisions, len(res.Elites))
	}

	// Round-trip through the CLI's decision file and render the report.
	path := filepath.Join(t.TempDir(), "decisions.json")
	if err := gmorph.SaveFusionReport(path, res.Decisions); err != nil {
		t.Fatal(err)
	}
	loaded, err := gmorph.LoadFusionReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(res.Decisions) {
		t.Fatalf("decision file round-trip lost rounds: %d vs %d", len(loaded), len(res.Decisions))
	}
	var b strings.Builder
	gmorph.RenderFusionReport(&b, loaded)
	if !strings.Contains(b.String(), "fusion decisions:") {
		t.Fatalf("report missing summary:\n%s", b.String())
	}

	// Second search on a fresh seed: the persisted memo primes the learned
	// pre-ranker, which must come back trained and consulted.
	cfg2 := cfg
	cfg2.Seed = 4
	cfg2.Predict = true
	res2, err := gmorph.Fuse(teachers, ds, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Predictor == nil {
		t.Fatal("Predict run returned no predictor stats")
	}
	if res2.Predictor.Observed == 0 {
		t.Fatal("predictor was not primed from the memo corpus")
	}
	if res2.Predictor.Assessed == 0 && res2.Stats.CacheHits == 0 {
		t.Fatalf("predictor neither assessed nor memo replayed: %+v", res2.Predictor)
	}
}
