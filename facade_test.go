package gmorph_test

import (
	"strings"
	"testing"

	gmorph "repro"
)

func TestFacadeLatencyAndFLOPs(t *testing.T) {
	m := gmorph.NewModel(gmorph.Shape{3, 16, 16})
	rng := gmorph.NewRNG(81)
	if err := gmorph.NewBranch(m, rng, "t", 0).ConvBlock(4, true, true).Head(2).Err(); err != nil {
		t.Fatal(err)
	}
	if gmorph.FLOPs(m) <= 0 {
		t.Fatal("FLOPs must be positive")
	}
	if gmorph.Latency(m) <= 0 {
		t.Fatal("Latency must be positive")
	}
	if gmorph.MeasureEngine(gmorph.ReferenceEngine(m), gmorph.Shape{3, 16, 16}, 2) <= 0 {
		t.Fatal("MeasureEngine must be positive")
	}
}

func TestFacadeToDOT(t *testing.T) {
	m := gmorph.NewModel(gmorph.Shape{3, 16, 16})
	rng := gmorph.NewRNG(82)
	if err := gmorph.NewBranch(m, rng, "vision", 0).ConvBlock(4, false, false).Head(2).Err(); err != nil {
		t.Fatal(err)
	}
	dot := m.ToDOT("test")
	if !strings.Contains(dot, "vision") {
		t.Fatalf("DOT should include task names:\n%s", dot)
	}
}

func TestFacadeEvaluateMatchesTargets(t *testing.T) {
	ds := gmorph.NewFaceDataset(32, 16, 16, 83, "gender")
	m := gmorph.NewModel(gmorph.Shape{3, 16, 16})
	rng := gmorph.NewRNG(84)
	if err := gmorph.NewBranch(m, rng, "gender", 0).
		ConvBlock(6, true, true).ConvBlock(8, true, true).Head(2).Err(); err != nil {
		t.Fatal(err)
	}
	beforeAcc, err := gmorph.Evaluate(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	before := beforeAcc[0]
	if _, err := gmorph.Pretrain(m, ds, 6, 0.004, 85); err != nil {
		t.Fatal(err)
	}
	afterAcc, err := gmorph.Evaluate(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	after := afterAcc[0]
	if after < before-0.1 {
		t.Fatalf("training made the model much worse: %.3f -> %.3f", before, after)
	}
	if after < 0.6 {
		t.Fatalf("pretrained gender accuracy %.3f too low", after)
	}
}

func TestZooConstantsExported(t *testing.T) {
	names := []string{
		gmorph.VGG11, gmorph.VGG13, gmorph.VGG16,
		gmorph.ResNet18, gmorph.ResNet34,
		gmorph.ViTBase, gmorph.ViTLarge,
		gmorph.BERTBase, gmorph.BERTLarge,
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("bad zoo constant %q", n)
		}
		seen[n] = true
	}
}
