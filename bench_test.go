package gmorph_test

// Benchmark harness: one testing.B benchmark per figure/table of the
// paper's evaluation, each running the corresponding experiment at reduced
// scale and reporting the headline quantity as a custom metric. Run the
// full paper-shaped sweep with `go run ./cmd/experiments -scale full`.
//
// Mapping (see DESIGN.md section 5 and EXPERIMENTS.md):
//
//	BenchmarkFigure1  — random-fusion speedup/accuracy scatter (Section 2.1)
//	BenchmarkFigure2  — fine-tune time of elite-derived vs original-derived
//	BenchmarkFigure3  — init sensitivity of fixed architectures
//	BenchmarkFigure7  — headline speedups per benchmark/threshold/variant
//	BenchmarkFigure8  — search convergence incl. random sampling baseline
//	BenchmarkTable3   — reference vs fused engine on original vs GMorph
//	BenchmarkTable4   — MTL baselines vs GMorph
//	BenchmarkTable5   — search-time savings from predictive filtering
//
// Plus microbenchmarks of the substrate hot paths.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	gmorph "repro"
	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

// benchScale is the miniature scale used inside testing.B; each benchmark
// does meaningful work in seconds, not hours.
func benchScale() bench.Scale {
	sc := bench.Tiny()
	sc.Rounds = 4
	sc.Epochs = 4
	sc.PretrainEpochs = 4
	sc.Train, sc.Test = 48, 24
	return sc
}

func BenchmarkFigure1(b *testing.B) {
	sc := benchScale()
	sc.Epochs = 2
	spec, err := bench.SpecByID("B4")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFigure1(spec, sc, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("no points")
		}
		var bestSimilar float64
		for _, p := range points {
			if p.Similar && p.Speedup > bestSimilar {
				bestSimilar = p.Speedup
			}
		}
		b.ReportMetric(bestSimilar, "best-similar-speedup-x")
	}
}

func BenchmarkFigure2(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFigure2(sc, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(points)), "accepted-candidates")
	}
}

func BenchmarkFigure3(b *testing.B) {
	sc := benchScale()
	sc.Epochs = 3
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFigure3(sc, 3)
		if err != nil {
			b.Fatal(err)
		}
		// Spread of accuracy drops across initializations (the figure's
		// point: same architecture, different outcomes).
		lo, hi := res.Drops[0][0], res.Drops[0][0]
		for _, ds := range res.Drops {
			for _, d := range ds {
				if d < lo {
					lo = d
				}
				if d > hi {
					hi = d
				}
			}
		}
		b.ReportMetric(hi-lo, "drop-spread")
	}
}

func BenchmarkFigure7(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure7([]string{"B1"}, []float64{0.05},
			[]string{bench.VariantPlain, bench.VariantPR}, sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range rows[0].Outcomes {
			if o.Variant == bench.VariantPlain {
				b.ReportMetric(o.Speedup, "speedup-x")
			}
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	sc := benchScale()
	sc.Rounds = 3
	for i := 0; i < b.N; i++ {
		curves, err := bench.RunFigure8(sc, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 4 {
			b.Fatalf("curves = %d, want 4 variants", len(curves))
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable3([]string{"B1"}, 0.05, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].FusedSpeedup, "fused-engine-speedup-x")
	}
}

func BenchmarkTable4(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable4([]string{"B1"}, 0.05, sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].GMorphSpeedup, "gmorph-speedup-x")
		b.ReportMetric(rows[0].AllSharedSpeedup, "allshared-speedup-x")
	}
}

func BenchmarkTable5(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunFigure7([]string{"B1"}, []float64{0.05},
			[]string{bench.VariantPlain, bench.VariantP, bench.VariantPR}, sc)
		if err != nil {
			b.Fatal(err)
		}
		t5 := bench.Table5FromFig7(rows)
		b.ReportMetric(t5[0].Savings[bench.VariantPR], "pr-time-saving-frac")
	}
}

// --- substrate microbenchmarks ---------------------------------------------

func BenchmarkInferenceOriginalB1(b *testing.B) {
	sc := benchScale()
	spec, _ := bench.SpecByID("B1")
	w, err := bench.Build(spec, sc)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(4, 3, sc.ImgSize, sc.ImgSize)
	tensor.NewRNG(1).FillNormal(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Teacher.Forward(x, false)
	}
}

func BenchmarkFusedEngineB1(b *testing.B) {
	sc := benchScale()
	spec, _ := bench.SpecByID("B1")
	w, err := bench.Build(spec, sc)
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.Compile(w.Teacher)
	x := tensor.New(4, 3, sc.ImgSize, sc.ImgSize)
	tensor.NewRNG(1).FillNormal(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Forward(x)
	}
}

// BenchmarkPlanVsFused contrasts the two fused executors on the same
// trained multi-task model: the compiled-plan engine (static buffer plan,
// zero steady-state allocations) against the legacy closure-tree walker
// (allocates output tensors at every layer). ReportAllocs makes the buffer
// plan's effect visible directly in the benchmark output.
func BenchmarkPlanVsFused(b *testing.B) {
	sc := benchScale()
	spec, _ := bench.SpecByID("B1")
	w, err := bench.Build(spec, sc)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(4, 3, sc.ImgSize, sc.ImgSize)
	tensor.NewRNG(1).FillNormal(x, 0, 1)
	b.Run("plan", func(b *testing.B) {
		eng := engine.Compile(w.Teacher)
		eng.Forward(x) // bind buffers outside the measurement
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Forward(x)
		}
	})
	b.Run("closures", func(b *testing.B) {
		eng := engine.CompileClosures(w.Teacher)
		eng.Forward(x)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Forward(x)
		}
	})
}

func benchmarkMatMulSize(b *testing.B, n int) {
	rng := tensor.NewRNG(1)
	x := tensor.New(n, n)
	y := tensor.New(n, n)
	out := tensor.New(n, n)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(y, 0, 1)
	b.SetBytes(int64(n * n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, y)
	}
}

// BenchmarkFuseSearchMemo measures the end-to-end Fuse wall-clock of a
// duplicate-dominated search with and without the fingerprint memo cache
// (BENCH_PR4.json records the comparison). MaxPairsPerPass=1 with the random
// policy keeps the candidate space to single-pair mutations of the original
// graph, so a 24-round search revisits structures heavily — the regime the
// cache targets. The hit rate is reported as a custom metric.
func BenchmarkFuseSearchMemo(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"memo", false}, {"nomemo", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ds := testutil.TinyFace(141, 64, 32)
			teachers := testutil.TinyMultiDNN(142, ds)
			testutil.PretrainTeachers(teachers, ds, 6, 0.004, 143)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := gmorph.Fuse(teachers, ds, gmorph.Config{
					AccuracyDrop:       0.10,
					Rounds:             24,
					MaxPairsPerPass:    1,
					FineTuneEpochs:     8,
					LearningRate:       0.003,
					EvalEvery:          2,
					RandomPolicy:       true,
					Seed:               17,
					DisableSearchCache: mode.disable,
				})
				if err != nil {
					b.Fatal(err)
				}
				total := res.Stats.CacheHits + res.Stats.CacheMisses
				if total > 0 {
					b.ReportMetric(float64(res.Stats.CacheHits)/float64(total), "cache-hit-rate")
				}
				b.ReportMetric(float64(res.Stats.TotalEpochs), "fine-tune-epochs")
			}
		})
	}
}

func BenchmarkMatMul128(b *testing.B) { benchmarkMatMulSize(b, 128) }

func BenchmarkMatMul256(b *testing.B) { benchmarkMatMulSize(b, 256) }

func BenchmarkMatMul512(b *testing.B) { benchmarkMatMulSize(b, 512) }

func BenchmarkConvForward(b *testing.B) {
	rng := gmorph.NewRNG(1)
	m := gmorph.NewModel(gmorph.Shape{3, 32, 32})
	if err := gmorph.AddBranch(m, rng, gmorph.ZooConfig{WidthScale: 2}, gmorph.VGG11, "t", 0, 4); err != nil {
		b.Fatal(err)
	}
	x := tensor.New(4, 3, 32, 32)
	tensor.NewRNG(2).FillNormal(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

func BenchmarkLatencyEstimator(b *testing.B) {
	sc := benchScale()
	spec, _ := bench.SpecByID("B1")
	w, err := bench.Build(spec, sc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		estimator.Latency(w.Teacher, estimator.LatencyOptions{Batch: 2, Warmup: 1, Runs: 3})
	}
}

// --- ablation benches (design choices from DESIGN.md) ------------------------

func BenchmarkAblationPairsPerPass(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := bench.RunAblationPairsPerPass(sc, 0.05, []int{1, 3})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Found {
				b.ReportMetric(p.Speedup, p.Setting+"-speedup-x")
			}
		}
	}
}

func BenchmarkAblationEliteCapacity(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		points, err := bench.RunAblationEliteCapacity(sc, 0.05, []int{1, 16})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 2 {
			b.Fatal("expected 2 ablation points")
		}
	}
}

// transformerBenchGraph builds a paper-width (WidthMul 8) two-task
// transformer graph shaped like benchmark B6 (ViT-Large + ViT-Base over
// images) or B7 (BERT-Large + BERT-Base over token ids), plus a matching
// input batch. Weights are random: these graphs feed latency benchmarks,
// where pre-training is pure setup cost.
func transformerBenchGraph(b *testing.B, family string) (*graph.Graph, *tensor.Tensor) {
	b.Helper()
	rng := tensor.NewRNG(61)
	cfg := models.Config{WidthMul: 8, Vocab: 40}
	add := func(g *graph.Graph, arch string, task, classes int) {
		if _, err := models.AddBranch(g, rng, cfg, arch, task, classes); err != nil {
			b.Fatal(err)
		}
	}
	switch family {
	case "vit":
		g := graph.New(graph.Shape{3, 64, 64}, graph.DomainRaw) // 64 tokens/branch
		g.TaskNames[0], g.TaskNames[1] = "object", "salient"
		add(g, models.ViTLarge, 0, 6)
		add(g, models.ViTBase, 1, 2)
		g.RefreshCapacities()
		x := tensor.New(4, 3, 64, 64)
		tensor.NewRNG(62).FillNormal(x, 0, 1)
		return g, x
	case "bert":
		g := graph.New(graph.Shape{64}, graph.DomainRaw)
		g.TaskNames[0], g.TaskNames[1] = "cola", "sst"
		add(g, models.BERTLarge, 0, 2)
		add(g, models.BERTBase, 1, 2)
		g.RefreshCapacities()
		x := tensor.New(4, 64)
		for i := range x.Data() {
			x.Data()[i] = float32((i*7 + 3) % 40)
		}
		return g, x
	}
	b.Fatalf("unknown transformer bench family %q", family)
	return nil, nil
}

// BenchmarkPlanTransformerVsEager contrasts the compiled-plan executor's
// fused transformer ops (packed QKV GEMM, tiled flash-style attention,
// LayerNorm+residual epilogues, static buffer plan) against the closure-tree
// walker, which runs each layer's eager Forward — three separate Q/K/V
// GEMMs and a fully materialized S×S score matrix per head, with fresh
// output tensors at every layer. Paper-width profiles so the fusions act on
// real GEMM shapes (BENCH_PR6.json records the comparison).
func BenchmarkPlanTransformerVsEager(b *testing.B) {
	for _, family := range []string{"vit", "bert"} {
		g, x := transformerBenchGraph(b, family)
		b.Run(family+"/plan", func(b *testing.B) {
			eng := engine.Compile(g)
			eng.Forward(x) // bind buffers outside the measurement
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Forward(x)
			}
		})
		b.Run(family+"/eager", func(b *testing.B) {
			eng := engine.CompileClosures(g)
			eng.Forward(x)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Forward(x)
			}
		})
	}
}

// BenchmarkQuantTransformer is BenchmarkPlanQuantVsF32 for the transformer
// benchmarks: B6 (ViT) and B7 (BERT) teachers are pre-trained at paper
// width, quantized under the default accuracy budget — which now covers the
// packed QKV projection alongside the attention-output and FFN linears —
// and executed through the plan engine with and without annotations.
func BenchmarkQuantTransformer(b *testing.B) {
	sc := benchScale()
	sc.WidthScale = 1
	sc.WidthMul = 8
	sc.Train, sc.Test = 32, 32
	sc.PretrainEpochs = 1
	for _, id := range []string{"B6", "B7"} {
		spec, err := bench.SpecByID(id)
		if err != nil {
			b.Fatal(err)
		}
		w, err := bench.Build(spec, sc)
		if err != nil {
			b.Fatal(err)
		}
		quantized := w.Teacher
		rep, err := gmorph.Quantize(quantized, w.Dataset, gmorph.QuantConfig{})
		if err != nil {
			b.Fatal(err)
		}
		f32g := quantized.Clone()
		quant.Strip(f32g)

		var x *tensor.Tensor
		if spec.Family == "text" {
			x = tensor.New(4, sc.SeqLen)
			for i := range x.Data() {
				x.Data()[i] = float32((i*7 + 3) % w.Vocab)
			}
		} else {
			x = tensor.New(4, 3, sc.ImgSize, sc.ImgSize)
			tensor.NewRNG(7).FillNormal(x, 0, 1)
		}
		run := func(name string, g *graph.Graph) {
			b.Run(id+"/"+name, func(b *testing.B) {
				eng := engine.Compile(g)
				eng.Forward(x) // bind buffers outside the measurement
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Forward(x)
				}
				b.ReportMetric(float64(rep.QuantizedOps), "int8-ops")
				b.ReportMetric(rep.Drop, "accuracy-drop")
			})
		}
		run("f32", f32g)
		run("int8", quantized)
	}
}

// BenchmarkPlanQuantVsF32 contrasts the plan executor at int8 versus f32 on
// conv-heavy sim profiles (BENCH_PR5.json records the comparison). Each
// profile's teacher is pre-trained, quantized by quant.Apply under the
// default 1% accuracy budget, and then executed through engine.Compile with
// and without its annotations — same weights, same plan structure, only the
// conv/linear kernels differ. The measured accuracy drop and the number of
// ops left at int8 are reported as custom metrics.
func BenchmarkPlanQuantVsF32(b *testing.B) {
	sc := benchScale()
	// Paper-width profiles: the int8 GEMM's win is memory traffic, so it
	// needs real channel counts (VGG/ResNet 64..512) — at the sim profiles'
	// 8x-reduced widths every GEMM is cache-resident and f32 ties. Width
	// makes pre-training expensive; it is setup, not measurement, so one
	// epoch suffices (the guard's behavior under pressure has its own test).
	sc.WidthScale = 1
	sc.WidthMul = 8
	sc.Train, sc.Test = 32, 32
	sc.PretrainEpochs = 1
	for _, id := range []string{"B2", "B4"} {
		spec, err := bench.SpecByID(id)
		if err != nil {
			b.Fatal(err)
		}
		w, err := bench.Build(spec, sc)
		if err != nil {
			b.Fatal(err)
		}
		quantized := w.Teacher
		rep, err := gmorph.Quantize(quantized, w.Dataset, gmorph.QuantConfig{})
		if err != nil {
			b.Fatal(err)
		}
		f32g := quantized.Clone()
		quant.Strip(f32g)

		x := tensor.New(4, 3, sc.ImgSize, sc.ImgSize)
		tensor.NewRNG(7).FillNormal(x, 0, 1)
		run := func(name string, g *graph.Graph) {
			b.Run(id+"/"+name, func(b *testing.B) {
				eng := engine.Compile(g)
				eng.Forward(x) // bind buffers outside the measurement
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Forward(x)
				}
				b.ReportMetric(float64(rep.QuantizedOps), "int8-ops")
				b.ReportMetric(rep.Drop, "accuracy-drop")
			})
		}
		run("f32", f32g)
		run("int8", quantized)
	}
}

// BenchmarkFuseSearchDist measures the distributed-search subsystem's two
// wall-clock levers on the PR4 duplicate-heavy fixture (BENCH_PR10.json
// records the comparison against BENCH_PR4):
//
//   - paper-baseline re-runs the PR4 memo configuration unchanged (the
//     reference wall-clock);
//   - memo-warm runs the identical search over a pre-populated persistent
//     memo: every outcome and latency replays, zero fine-tuning runs, and
//     the elites are asserted fingerprint-identical to the baseline's;
//   - predict-off / predict-on run a fresh-seed search over a memo corpus
//     with the learned pre-ranker disabled vs enabled, reporting how many
//     candidates each actually measured (fine-tuned).
func BenchmarkFuseSearchDist(b *testing.B) {
	pr4 := func(seed uint64) gmorph.Config {
		return gmorph.Config{
			AccuracyDrop:    0.10,
			Rounds:          24,
			MaxPairsPerPass: 1,
			FineTuneEpochs:  8,
			LearningRate:    0.003,
			EvalEvery:       2,
			RandomPolicy:    true,
			Seed:            seed,
		}
	}
	world := func(b *testing.B) (*gmorph.Model, *gmorph.Dataset) {
		ds := testutil.TinyFace(141, 64, 32)
		teachers := testutil.TinyMultiDNN(142, ds)
		testutil.PretrainTeachers(teachers, ds, 6, 0.004, 143)
		return teachers, ds
	}
	eliteFps := func(res *gmorph.Result) []string {
		fps := make([]string, len(res.Elites))
		for i, e := range res.Elites {
			fps[i] = gmorph.Fingerprint(e.Graph)
		}
		return fps
	}

	var baselineFps []string
	b.Run("paper-baseline", func(b *testing.B) {
		teachers, ds := world(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := gmorph.Fuse(teachers, ds, pr4(17))
			if err != nil {
				b.Fatal(err)
			}
			baselineFps = eliteFps(res)
			b.ReportMetric(float64(res.Stats.FineTuned), "measured-candidates")
			b.ReportMetric(float64(res.Stats.TotalEpochs), "fine-tune-epochs")
		}
	})

	b.Run("memo-warm", func(b *testing.B) {
		teachers, ds := world(b)
		memoPath := filepath.Join(b.TempDir(), "memo.json")
		warm := pr4(17)
		warm.MemoPath = memoPath
		if _, err := gmorph.Fuse(teachers, ds, warm); err != nil {
			b.Fatal(err) // untimed populating run
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := gmorph.Fuse(teachers, ds, warm)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stats.FineTuned != 0 {
				b.Fatalf("warm replay fine-tuned %d candidates", res.Stats.FineTuned)
			}
			if len(baselineFps) > 0 {
				fps := eliteFps(res)
				if len(fps) != len(baselineFps) {
					b.Fatalf("elite count drifted: %d vs %d", len(fps), len(baselineFps))
				}
				for j := range fps {
					if fps[j] != baselineFps[j] {
						b.Fatalf("elite %d fingerprint drifted", j)
					}
				}
			}
			b.ReportMetric(float64(res.Stats.FineTuned), "measured-candidates")
		}
	})

	// The predictor legs search a fresh seed over a corpus accumulated from
	// three prior single-pair searches under a tight accuracy budget (more
	// failing candidates, which is what the pre-ranker learns to skip). The
	// measurement run allows two-pair mutations, so its space is a superset
	// of the corpus's: single-pair candidates replay from the memo while the
	// fresh, more aggressive two-pair fusions are the ones the trained model
	// gets to veto.
	tight := func(seed uint64) gmorph.Config {
		c := pr4(seed)
		c.AccuracyDrop = 0.02
		c.Rounds = 36
		return c
	}
	buildCorpus := func(b *testing.B, teachers *gmorph.Model, ds *gmorph.Dataset) string {
		b.Helper()
		path := filepath.Join(b.TempDir(), "corpus.json")
		for _, seed := range []uint64{29, 31, 37} {
			c := tight(seed)
			c.MemoPath = path
			if _, err := gmorph.Fuse(teachers, ds, c); err != nil {
				b.Fatal(err)
			}
		}
		return path
	}
	var offFps []string
	for _, mode := range []struct {
		name    string
		predict bool
	}{{"predict-off", false}, {"predict-on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			teachers, ds := world(b)
			corpus := buildCorpus(b, teachers, ds)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Fresh copy per iteration so replays of this run's own
				// outcomes don't contaminate the measured-candidate count.
				path := filepath.Join(b.TempDir(), fmt.Sprintf("memo-%d.json", i))
				raw, err := os.ReadFile(corpus)
				if err != nil {
					b.Fatal(err)
				}
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				c := tight(23)
				c.MaxPairsPerPass = 2
				c.MemoPath = path
				c.Predict = mode.predict
				res, err := gmorph.Fuse(teachers, ds, c)
				if err != nil {
					b.Fatal(err)
				}
				fps := eliteFps(res)
				if !mode.predict {
					offFps = fps
				} else if len(offFps) > 0 {
					// "Unchanged accuracy": skipping must not cost elites.
					if len(fps) != len(offFps) {
						b.Fatalf("predictor changed elite count: %d vs %d", len(fps), len(offFps))
					}
					for j := range fps {
						if fps[j] != offFps[j] {
							b.Fatalf("predictor changed elite %d", j)
						}
					}
				}
				b.ReportMetric(float64(res.Stats.FineTuned), "measured-candidates")
				b.ReportMetric(float64(res.Stats.PredictorSkipped), "predictor-skipped")
				b.ReportMetric(float64(len(res.Elites)), "elites")
			}
		})
	}
}
